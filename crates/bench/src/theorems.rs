//! Machine checks of the paper's theorems, used by the experiment
//! binaries and the integration tests.
//!
//! * [`check_subject_reduction`] — Theorem 1: along every bounded
//!   execution of `P`, the least solution computed for `P` stays
//!   acceptable for each residual, every sent value is predicted by
//!   `ζ(l)` and covered by `κ(⌊m⌋)`, and inputs respect
//!   `κ(⌊m⌋) ⊆ ρ(x)`.
//! * [`check_confined_implies_careful`] — Theorem 3 on one process.
//! * [`check_moore_meet`] — Theorem 2 on finite estimates.

use nuspi_cfa::{accept, analyze, FiniteEstimate, FlowVar, Prod, Solution};
use nuspi_security::{carefulness, confinement, Policy};
use nuspi_semantics::{explore_tau, Action, Agent, ExecConfig};
use nuspi_syntax::Process;

/// Counters from a subject-reduction run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubjectReductionStats {
    /// States whose residual was re-verified against the solution.
    pub states_checked: usize,
    /// Output commitments whose value/label/channel were checked.
    pub outputs_checked: usize,
    /// Input commitments checked.
    pub inputs_checked: usize,
}

/// Checks Theorem 1 for `p` over its bounded `τ`-state space.
///
/// # Errors
///
/// Returns a description of the first violated clause.
pub fn check_subject_reduction(
    p: &Process,
    cfg: &ExecConfig,
) -> Result<SubjectReductionStats, String> {
    let sol = analyze(p);
    let mut stats = SubjectReductionStats::default();
    let mut error: Option<String> = None;
    explore_tau(p, cfg, |state, commitments| {
        // Clause (1)/(2): the estimate stays acceptable for the residual.
        let violations = accept::verify(&sol, state);
        if !violations.is_empty() {
            error = Some(format!(
                "residual not acceptable: {} (first: {})",
                state, violations[0]
            ));
            return false;
        }
        stats.states_checked += 1;
        for c in commitments {
            match (&c.action, &c.agent) {
                (Action::Out(m), Agent::Conc(conc)) => {
                    stats.outputs_checked += 1;
                    // Clause (3): ⌊w⌋ ∈ ζ(l) and ζ(l) ⊆ κ(⌊m⌋).
                    if !sol.contains(FlowVar::Zeta(conc.label), &conc.value) {
                        error = Some(format!(
                            "sent value {} not predicted by ζ({})",
                            conc.value, conc.label
                        ));
                        return false;
                    }
                    if !sol.contains(FlowVar::Kappa(m.canonical()), &conc.value) {
                        error = Some(format!(
                            "sent value {} not covered by κ({})",
                            conc.value,
                            m.canonical()
                        ));
                        return false;
                    }
                    let zl = sol.zeta(conc.label);
                    let kap = sol.kappa(m.canonical());
                    if !zl.iter().all(|pr| kap.contains(pr)) {
                        error = Some(format!("ζ({}) ⊄ κ({})", conc.label, m.canonical()));
                        return false;
                    }
                }
                (Action::In(m), Agent::Abs(abs)) => {
                    stats.inputs_checked += 1;
                    // Clause (4): κ(⌊m⌋) ⊆ ρ(x).
                    let kap = sol.kappa(m.canonical());
                    let rho = sol.rho(abs.var);
                    if !kap.iter().all(|pr| rho.contains(pr)) {
                        error = Some(format!("κ({}) ⊄ ρ({})", m.canonical(), abs.var));
                        return false;
                    }
                }
                _ => {}
            }
        }
        true
    });
    match error {
        Some(e) => Err(e),
        None => Ok(stats),
    }
}

/// Checks Theorem 3 on one process: if the CFA says confined, the bounded
/// carefulness monitor must agree.
///
/// # Errors
///
/// Returns a description when a confined process is caught being careless
/// (which would falsify the theorem / implementation).
pub fn check_confined_implies_careful(
    p: &Process,
    policy: &Policy,
    cfg: &ExecConfig,
) -> Result<ConfinedCareful, String> {
    let conf = confinement(p, policy);
    let care = carefulness(p, policy, cfg);
    if conf.is_confined() && !care.is_careful() {
        return Err(format!(
            "confined process is not careful: {}",
            care.violations[0]
        ));
    }
    Ok(ConfinedCareful {
        confined: conf.is_confined(),
        careful: care.is_careful(),
    })
}

/// The two verdicts of a Theorem 3 check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfinedCareful {
    /// Static verdict.
    pub confined: bool,
    /// Dynamic verdict (within the explored bound).
    pub careful: bool,
}

/// Checks the Moore-family property (Theorem 2) on two finite estimates
/// for `p`: if both are acceptable, their meet must be acceptable and
/// below both.
///
/// # Errors
///
/// Returns a description if the meet fails acceptability or ordering.
pub fn check_moore_meet(p: &Process, a: &FiniteEstimate, b: &FiniteEstimate) -> Result<(), String> {
    if !a.accepts(p) || !b.accepts(p) {
        return Err("premise failed: an input estimate is not acceptable".into());
    }
    let met = a.meet(b);
    let violations = met.verify(p);
    if !violations.is_empty() {
        return Err(format!("meet not acceptable: {}", violations[0]));
    }
    if !met.leq(a) || !met.leq(b) {
        return Err("meet is not a lower bound".into());
    }
    Ok(())
}

/// Validates that the solver output is acceptable per the independent
/// Table 2 checker — a sanity wrapper used across experiments.
///
/// # Errors
///
/// Returns the first violation, if any.
pub fn check_least_solution_acceptable(p: &Process) -> Result<Solution, String> {
    let sol = analyze(p);
    let violations = accept::verify(&sol, p);
    match violations.first() {
        Some(v) => Err(v.to_string()),
        None => Ok(sol),
    }
}

/// Counts productions of a κ entry — a convenient size metric for
/// experiment tables.
pub fn kappa_width(sol: &Solution, chan: &str) -> usize {
    sol.kappa(nuspi_syntax::Symbol::intern(chan)).len()
}

/// Returns true when the κ entry mentions at least one `Enc` production —
/// used to render the Example 1 table.
pub fn kappa_all_ciphertexts(sol: &Solution, chan: &str) -> bool {
    let k = sol.kappa(nuspi_syntax::Symbol::intern(chan));
    !k.is_empty() && k.iter().all(|p| matches!(p, Prod::Enc { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genproc::{random_process, GenConfig};
    use nuspi_protocols::suite;

    #[test]
    fn subject_reduction_on_protocol_suite() {
        let cfg = ExecConfig {
            max_depth: 10,
            max_states: 600,
            ..ExecConfig::default()
        };
        for spec in suite() {
            let stats = check_subject_reduction(&spec.process, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(stats.states_checked > 0, "{}", spec.name);
        }
    }

    #[test]
    fn subject_reduction_on_random_processes() {
        let gcfg = GenConfig::default();
        let cfg = ExecConfig {
            max_depth: 6,
            max_states: 200,
            ..ExecConfig::default()
        };
        for seed in 0..60 {
            let p = random_process(seed, &gcfg);
            check_subject_reduction(&p, &cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn theorem3_on_protocol_suite() {
        let cfg = ExecConfig {
            max_depth: 10,
            max_states: 600,
            ..ExecConfig::default()
        };
        for spec in suite() {
            let verdicts = check_confined_implies_careful(&spec.process, &spec.policy, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(
                verdicts.confined, spec.expect_confined,
                "{}: unexpected static verdict",
                spec.name
            );
        }
    }

    #[test]
    fn least_solution_acceptable_everywhere() {
        for spec in suite() {
            check_least_solution_acceptable(&spec.process)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }
}
