//! A miniature property-testing harness: seeded generation plus greedy
//! shrinking, in ~150 lines of std-only code.
//!
//! The offline build cannot depend on `proptest`, and the repository's
//! properties do not need its full machinery — every generator here is a
//! plain function `Fn(&mut SplitMix64) -> T`, every shrinker a function
//! `Fn(&T) -> Vec<T>` proposing strictly simpler candidates, and
//! [`check`] glues them together: run the property over `iters` seeded
//! inputs, and on the first failure greedily walk the shrink lattice
//! downhill (keep any candidate that still fails) before reporting the
//! minimal counterexample with its seed.
//!
//! Determinism: the i-th case of a named check is produced by
//! `SplitMix64::seed_from_u64(base + i)`, so failures reproduce exactly;
//! set `NUSPI_TESTKIT_SEED` to shift the whole run onto a fresh stream.

use nuspi_semantics::rng::{Rng, SplitMix64};
use nuspi_syntax::{builder as b, Expr, Name, Term, Value};
use std::rc::Rc;

/// Upper bound on accepted shrink steps — a safety valve against shrink
/// cycles; greedy descent normally terminates far earlier.
const MAX_SHRINK_STEPS: usize = 2000;

/// Runs `prop` on `iters` generated inputs; on failure, greedily shrinks
/// and panics with the minimal counterexample.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when the property fails,
/// after shrinking, with the case number, seed, input and error message.
pub fn check<T, G, S, P>(name: &str, iters: u64, gen: G, shrink: S, prop: P)
where
    T: std::fmt::Debug,
    G: Fn(&mut SplitMix64) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let base: u64 = std::env::var("NUSPI_TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5eed);
    for case in 0..iters {
        let seed = base.wrapping_add(case);
        let mut rng = SplitMix64::seed_from_u64(seed);
        let input = gen(&mut rng);
        let Err(first_error) = prop(&input) else {
            continue;
        };
        // Greedy descent: replace the counterexample with any shrink
        // candidate that still fails, until none does.
        let mut minimal = input;
        let mut error = first_error;
        let mut steps = 0;
        'descend: while steps < MAX_SHRINK_STEPS {
            for candidate in shrink(&minimal) {
                if let Err(e) = prop(&candidate) {
                    minimal = candidate;
                    error = e;
                    steps += 1;
                    continue 'descend;
                }
            }
            break;
        }
        panic!(
            "property `{name}` failed (case {case}, seed {seed}, \
             shrunk {steps} steps)\n  input: {minimal:?}\n  error: {error}"
        );
    }
}

/// The trivial shrinker: propose nothing.
pub fn no_shrink<T>(_: &T) -> Vec<T> {
    Vec::new()
}

/// Shrinks an unsigned integer toward zero (zero, halving, decrement).
pub fn shrink_u64(v: &u64) -> Vec<u64> {
    let v = *v;
    let mut out = Vec::new();
    if v > 0 {
        out.push(0);
        if v / 2 != 0 {
            out.push(v / 2);
        }
        out.push(v - 1);
    }
    out.dedup();
    out
}

/// Shrinks a vector: drop one element at a time, then shrink one element
/// at a time with `elem`.
pub fn shrink_vec<T: Clone>(xs: &[T], elem: impl Fn(&T) -> Vec<T>) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    for i in 0..xs.len() {
        let mut shorter = xs.to_vec();
        shorter.remove(i);
        out.push(shorter);
    }
    for (i, x) in xs.iter().enumerate() {
        for repl in elem(x) {
            let mut ys = xs.to_vec();
            ys[i] = repl;
            out.push(ys);
        }
    }
    out
}

/// A random canonical-ish value over a small alphabet (names `n0..n3`,
/// numerals, pairs, successors, encryptions with confounders `r0..r2`),
/// with structural depth at most `depth`.
pub fn random_value(rng: &mut SplitMix64, depth: usize) -> Rc<Value> {
    if depth == 0 || rng.gen_range(0..4) == 0 {
        return match rng.gen_range(0..5) {
            0 => Value::zero(),
            i => Value::name(format!("n{}", i - 1).as_str()),
        };
    }
    match rng.gen_range(0..3) {
        0 => Value::suc(random_value(rng, depth - 1)),
        1 => Value::pair(random_value(rng, depth - 1), random_value(rng, depth - 1)),
        _ => {
            let payload: Vec<Rc<Value>> = (0..rng.gen_range(0..3))
                .map(|_| random_value(rng, depth - 1))
                .collect();
            let key = random_value(rng, depth - 1);
            let r = rng.gen_range(0..3);
            Value::enc(payload, Name::global(format!("r{r}").as_str()), key)
        }
    }
}

/// Structural shrinker for values: every immediate child, then the
/// simplest leaf. Greedy descent over these candidates finds a minimal
/// failing subterm.
pub fn shrink_value(w: &Rc<Value>) -> Vec<Rc<Value>> {
    let mut out: Vec<Rc<Value>> = Vec::new();
    match &**w {
        Value::Zero => return out,
        Value::Name(_) => {
            out.push(Value::zero());
            return out;
        }
        Value::Suc(inner) => out.push(Rc::clone(inner)),
        Value::Pair(a, b2) => {
            out.push(Rc::clone(a));
            out.push(Rc::clone(b2));
        }
        Value::Enc { payload, key, .. } => {
            out.extend(payload.iter().cloned());
            out.push(Rc::clone(key));
        }
    }
    out.push(Value::zero());
    out
}

/// A random *closed* expression (no variables) mirroring
/// [`random_value`], for evaluation properties.
pub fn random_expr(rng: &mut SplitMix64, depth: usize) -> Expr {
    if depth == 0 || rng.gen_range(0..4) == 0 {
        return match rng.gen_range(0..5) {
            0 => b::numeral(rng.gen_range(0..4) as u32),
            i => b::name(&format!("n{}", i - 1)),
        };
    }
    match rng.gen_range(0..3) {
        0 => b::suc(random_expr(rng, depth - 1)),
        1 => b::pair(random_expr(rng, depth - 1), random_expr(rng, depth - 1)),
        _ => {
            let payload = random_expr(rng, depth - 1);
            let key = random_expr(rng, depth - 1);
            b::enc_auto(vec![payload], key)
        }
    }
}

/// Structural shrinker for closed expressions: immediate children, then
/// the literal `0`.
pub fn shrink_expr(e: &Expr) -> Vec<Expr> {
    let mut out: Vec<Expr> = Vec::new();
    match &e.term {
        Term::Zero => return out,
        Term::Name(_) | Term::Var(_) | Term::Val(_) => {
            out.push(b::zero());
            return out;
        }
        Term::Suc(inner) => out.push((**inner).clone()),
        Term::Pair(a, b2) => {
            out.push((**a).clone());
            out.push((**b2).clone());
        }
        Term::Enc { payload, key, .. } => {
            out.extend(payload.iter().cloned());
            out.push((**key).clone());
        }
    }
    out.push(b::zero());
    out
}

/// `Ok(())` when `cond` holds, `Err(msg())` otherwise — the ergonomic
/// core of property bodies.
pub fn ensure(cond: bool, msg: impl FnOnce() -> String) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg())
    }
}

/// `Ok(())` when both sides are equal, `Err` describing both otherwise.
pub fn ensure_eq<T: PartialEq + std::fmt::Debug>(a: T, b2: T) -> Result<(), String> {
    ensure(a == b2, || {
        format!("expected equal:\n  left:  {a:?}\n  right: {b2:?}")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check(
            "always-true-counted",
            64,
            |rng| rng.gen_range(0..1000) as u64,
            shrink_u64,
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        assert_eq!(counter.get(), 64);
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // Property "v < 10" fails for any v >= 10; greedy shrinking over
        // shrink_u64 must land exactly on 10.
        let result = std::panic::catch_unwind(|| {
            check(
                "v-below-ten",
                200,
                |rng| rng.next_u64() % 1000,
                shrink_u64,
                |v| ensure(*v < 10, || format!("{v} is not < 10")),
            );
        });
        let msg = match result {
            Err(payload) => *payload.downcast::<String>().expect("panic message"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("input: 10"), "minimal counterexample: {msg}");
        assert!(msg.contains("v-below-ten"), "{msg}");
    }

    #[test]
    fn value_generator_is_seed_deterministic() {
        let mut a = SplitMix64::seed_from_u64(9);
        let mut b2 = SplitMix64::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(random_value(&mut a, 3), random_value(&mut b2, 3));
        }
    }

    #[test]
    fn value_shrinker_strictly_simplifies() {
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..100 {
            let w = random_value(&mut rng, 3);
            for s in shrink_value(&w) {
                assert!(
                    s.height() < w.height() || matches!(&*s, Value::Zero),
                    "{w} -> {s}"
                );
            }
        }
    }

    #[test]
    fn expr_generator_yields_closed_expressions() {
        let mut rng = SplitMix64::seed_from_u64(2);
        for _ in 0..100 {
            let e = random_expr(&mut rng, 3);
            let mut fv = std::collections::HashSet::new();
            e.free_vars_into(&mut fv);
            assert!(fv.is_empty(), "{e:?}");
        }
    }
}
