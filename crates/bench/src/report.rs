//! Small helpers for the experiment binaries: aligned-table printing and
//! a log–log slope fit for the scaling figure.

use std::time::{Duration, Instant};

/// A plain-text table with aligned columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Table {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Times a closure, returning its result and the wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times a closure, repeating it until `min_total` elapses, and returns
/// the mean duration — stabilises sub-millisecond measurements.
pub fn timed_stable(min_total: Duration, mut f: impl FnMut()) -> Duration {
    let start = Instant::now();
    let mut iters = 0u32;
    while start.elapsed() < min_total || iters == 0 {
        f();
        iters += 1;
    }
    start.elapsed() / iters
}

/// Least-squares slope of `log(y)` against `log(x)` — the growth exponent
/// of a scaling series.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let logged: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = logged.len() as f64;
    assert!(n >= 2.0, "need at least two positive points");
    let sx: f64 = logged.iter().map(|(x, _)| x).sum();
    let sy: f64 = logged.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logged.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logged.iter().map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "n"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "23"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn slope_of_linear_data_is_one() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((loglog_slope(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_cubic_data_is_three() {
        let pts: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let x = i as f64;
                (x, 0.5 * x * x * x)
            })
            .collect();
        assert!((loglog_slope(&pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn timed_returns_result() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
