//! Small helpers for the experiment binaries: aligned-table printing, a
//! log–log slope fit for the scaling figure, and the shared
//! [`BenchReport`] schema every `bench_*` binary writes to
//! `artifacts/bench/BENCH_<name>.json` for the regression gate
//! (`bench_gate`) to consume.

use nuspi_engine::jsonio::{escape, Json};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A plain-text table with aligned columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Table {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// How the regression gate treats a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// A wall-clock measurement: fails the gate when it exceeds the
    /// baseline by more than the configured tolerance.
    Time,
    /// A deterministic count (productions, cache hits, …): must match
    /// the baseline exactly.
    Exact,
    /// Reported for trend-watching, never gated.
    Info,
}

impl Gate {
    /// The schema tag (`"time"` / `"exact"` / `"info"`).
    pub fn tag(self) -> &'static str {
        match self {
            Gate::Time => "time",
            Gate::Exact => "exact",
            Gate::Info => "info",
        }
    }

    /// Parses a schema tag.
    pub fn from_tag(tag: &str) -> Option<Gate> {
        match tag {
            "time" => Some(Gate::Time),
            "exact" => Some(Gate::Exact),
            "info" => Some(Gate::Info),
            _ => None,
        }
    }
}

/// One measured number in a [`BenchReport`].
#[derive(Clone, Debug)]
pub struct Metric {
    /// Stable metric name, `family/case[/aspect]`.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Unit label (`"ms"`, `"count"`, `"x"`, …).
    pub unit: String,
    /// How the gate treats this metric.
    pub gate: Gate,
}

/// A bench binary's machine-readable output: the shared schema behind
/// the committed `artifacts/bench/BENCH_*.json` baselines.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// The bench name (`solver`, `engine`, `lint`, …).
    pub bench: String,
    /// Whether this run used the reduced smoke budget.
    pub smoke: bool,
    /// The metrics, in emission order.
    pub metrics: Vec<Metric>,
}

impl BenchReport {
    /// An empty report for the named bench.
    pub fn new(bench: &str, smoke: bool) -> BenchReport {
        BenchReport {
            bench: bench.to_owned(),
            smoke,
            metrics: Vec::new(),
        }
    }

    /// Records a wall-clock measurement in milliseconds ([`Gate::Time`]).
    pub fn time(&mut self, name: &str, d: Duration) {
        self.metrics.push(Metric {
            name: name.to_owned(),
            value: d.as_secs_f64() * 1e3,
            unit: "ms".to_owned(),
            gate: Gate::Time,
        });
    }

    /// Records a deterministic count ([`Gate::Exact`]).
    pub fn exact(&mut self, name: &str, value: u64) {
        self.metrics.push(Metric {
            name: name.to_owned(),
            value: value as f64,
            unit: "count".to_owned(),
            gate: Gate::Exact,
        });
    }

    /// Records an ungated trend metric ([`Gate::Info`]).
    pub fn info(&mut self, name: &str, value: f64, unit: &str) {
        self.metrics.push(Metric {
            name: name.to_owned(),
            value,
            unit: unit.to_owned(),
            gate: Gate::Info,
        });
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The file this report is stored under: `BENCH_<bench>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.bench)
    }

    /// Renders the report (one metric per line, stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let sep = if i + 1 == self.metrics.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"name\":\"{}\",\"value\":{},\"unit\":\"{}\",\"gate\":\"{}\"}}{sep}\n",
                escape(&m.name),
                format_value(m.value),
                escape(&m.unit),
                m.gate.tag()
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report previously written by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn parse(src: &str) -> Result<BenchReport, String> {
        let v = Json::parse(src)?;
        let bench = v
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("missing `bench`")?
            .to_owned();
        let smoke = v.get("smoke").and_then(Json::as_bool).unwrap_or(false);
        let mut metrics = Vec::new();
        for m in v
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("missing `metrics` array")?
        {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or("metric missing `name`")?
                .to_owned();
            let value = m
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metric `{name}` missing `value`"))?;
            let unit = m
                .get("unit")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned();
            let gate = m
                .get("gate")
                .and_then(Json::as_str)
                .and_then(Gate::from_tag)
                .ok_or_else(|| format!("metric `{name}` has a bad `gate` tag"))?;
            metrics.push(Metric {
                name,
                value,
                unit,
                gate,
            });
        }
        Ok(BenchReport {
            bench,
            smoke,
            metrics,
        })
    }

    /// Writes the report to `dir/BENCH_<bench>.json`, creating `dir` if
    /// needed, and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Formats a metric value: integers without a fraction, times with
/// enough digits to survive a JSON round-trip.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// The directory bench reports live in: `$NUSPI_BENCH_DIR` when set,
/// else `artifacts/bench` relative to the current directory.
pub fn bench_dir() -> PathBuf {
    match std::env::var_os("NUSPI_BENCH_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("artifacts/bench"),
    }
}

/// Times a closure, returning its result and the wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times a closure, repeating it until `min_total` elapses, and returns
/// the mean duration — stabilises sub-millisecond measurements.
pub fn timed_stable(min_total: Duration, mut f: impl FnMut()) -> Duration {
    let start = Instant::now();
    let mut iters = 0u32;
    while start.elapsed() < min_total || iters == 0 {
        f();
        iters += 1;
    }
    start.elapsed() / iters
}

/// Least-squares slope of `log(y)` against `log(x)` — the growth exponent
/// of a scaling series.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let logged: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = logged.len() as f64;
    assert!(n >= 2.0, "need at least two positive points");
    let sx: f64 = logged.iter().map(|(x, _)| x).sum();
    let sy: f64 = logged.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logged.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logged.iter().map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "n"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "23"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn slope_of_linear_data_is_one() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((loglog_slope(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_cubic_data_is_three() {
        let pts: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let x = i as f64;
                (x, 0.5 * x * x * x)
            })
            .collect();
        assert!((loglog_slope(&pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn timed_returns_result() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
