//! Seeded random generation of closed νSPI processes, for the
//! subject-reduction and Moore-family fuzzing experiments (Theorems 1–2).
//!
//! The generator builds parallel compositions of short prefix sequences
//! over a shared channel pool, with structured messages (names, numerals,
//! pairs, encryptions under pool keys) and shape-compatible destructors on
//! the receiving side, so a useful fraction of the generated processes
//! actually reduce.

use nuspi_semantics::rng::{Rng, SplitMix64};
use nuspi_syntax::{builder as b, Expr, Name, Process, Var};

/// Tunables for the generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of parallel components.
    pub components: usize,
    /// Maximum prefixes per component.
    pub max_prefixes: usize,
    /// Number of channels in the pool.
    pub channels: usize,
    /// Number of key names in the pool.
    pub keys: usize,
    /// Probability (percent) that a component starts restricted names.
    pub restrict_pct: u32,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            components: 4,
            max_prefixes: 3,
            channels: 3,
            keys: 2,
            restrict_pct: 30,
        }
    }
}

/// Generates a closed process from the seed.
pub fn random_process(seed: u64, cfg: &GenConfig) -> Process {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut parts = Vec::new();
    for _ in 0..cfg.components {
        parts.push(component(&mut rng, cfg));
    }
    let body = b::par_all(parts);
    if rng.gen_range(0..100) < cfg.restrict_pct as usize {
        let k = rng.gen_range(0..cfg.keys);
        b::restrict(Name::global(format!("key{k}").as_str()), body)
    } else {
        body
    }
}

fn chan(rng: &mut SplitMix64, cfg: &GenConfig) -> Expr {
    let c = rng.gen_range(0..cfg.channels);
    b::name(&format!("chan{c}"))
}

fn key_name(rng: &mut SplitMix64, cfg: &GenConfig) -> Expr {
    let k = rng.gen_range(0..cfg.keys);
    b::name(&format!("key{k}"))
}

/// A random message expression; may mention the variables in scope.
fn message(rng: &mut SplitMix64, cfg: &GenConfig, scope: &[Var], depth: usize) -> Expr {
    let pick = rng.gen_range(0..if depth == 0 { 3 } else { 6 });
    match pick {
        0 => b::name(&format!("datum{}", rng.gen_range(0..3))),
        1 => b::numeral(rng.gen_range(0..3) as u32),
        2 if !scope.is_empty() => {
            let v = scope[rng.gen_range(0..scope.len())];
            b::var(v)
        }
        2 => b::zero(),
        3 => b::pair(
            message(rng, cfg, scope, depth - 1),
            message(rng, cfg, scope, depth - 1),
        ),
        4 => b::suc(message(rng, cfg, scope, depth - 1)),
        _ => {
            let payload = message(rng, cfg, scope, depth - 1);
            b::enc_auto(vec![payload], key_name(rng, cfg))
        }
    }
}

fn component(rng: &mut SplitMix64, cfg: &GenConfig) -> Process {
    let prefixes = rng.gen_range_inclusive(1, cfg.max_prefixes);
    build(rng, cfg, prefixes, &mut Vec::new())
}

fn build(rng: &mut SplitMix64, cfg: &GenConfig, budget: usize, scope: &mut Vec<Var>) -> Process {
    if budget == 0 {
        return b::nil();
    }
    match rng.gen_range(0..10) {
        0..=3 => {
            // Output.
            let msg = message(rng, cfg, scope, 2);
            let c = chan(rng, cfg);
            b::output(c, msg, build(rng, cfg, budget - 1, scope))
        }
        4..=6 => {
            // Input, then occasionally destructure the received value.
            let x = Var::fresh("rx");
            let c = chan(rng, cfg);
            scope.push(x);
            let then = match rng.gen_range(0..4) {
                0 => {
                    let a = Var::fresh("pa");
                    let bq = Var::fresh("pb");
                    scope.push(a);
                    scope.push(bq);
                    let inner = build(rng, cfg, budget - 1, scope);
                    scope.pop();
                    scope.pop();
                    b::split(a, bq, b::var(x), inner)
                }
                1 => {
                    let pz = Var::fresh("pz");
                    scope.push(pz);
                    let succ = build(rng, cfg, budget - 1, scope);
                    scope.pop();
                    let zero = build(rng, cfg, budget.saturating_sub(2), scope);
                    b::case_nat(b::var(x), zero, pz, succ)
                }
                2 => {
                    let y = Var::fresh("dy");
                    scope.push(y);
                    let inner = build(rng, cfg, budget - 1, scope);
                    scope.pop();
                    b::decrypt(b::var(x), vec![y], key_name(rng, cfg), inner)
                }
                _ => build(rng, cfg, budget - 1, scope),
            };
            scope.pop();
            b::input(c, x, then)
        }
        7 => {
            // Match two messages.
            let l = message(rng, cfg, scope, 1);
            let r = message(rng, cfg, scope, 1);
            b::guard(l, r, build(rng, cfg, budget - 1, scope))
        }
        8 => {
            // Restriction of a fresh datum.
            let n = Name::global(format!("fresh{}", rng.gen_range(0..3)).as_str());
            b::restrict(n, build(rng, cfg, budget - 1, scope))
        }
        _ => {
            // Parallel split.
            let left = build(rng, cfg, budget / 2, scope);
            let right = build(rng, cfg, budget.saturating_sub(budget / 2 + 1), scope);
            b::par(left, right)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_processes_are_closed() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let p = random_process(seed, &cfg);
            assert!(p.is_closed(), "seed {seed}: {p}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let a = random_process(42, &cfg);
        let b = random_process(42, &cfg);
        // Labels and binder ids differ (global counters), but the printed
        // structure must coincide.
        assert_eq!(a.size(), b.size());
    }

    #[test]
    fn a_fair_fraction_of_processes_can_step() {
        use nuspi_semantics::{tau_successors, ExecConfig};
        let cfg = GenConfig::default();
        let mut stepping = 0;
        let total = 100;
        for seed in 0..total {
            let p = random_process(seed, &cfg);
            if !tau_successors(&p, &ExecConfig::default()).is_empty() {
                stepping += 1;
            }
        }
        assert!(
            stepping * 4 >= total,
            "expected ≥25% of processes to step, got {stepping}/{total}"
        );
    }

    #[test]
    fn generated_processes_are_analyzable() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let p = random_process(seed, &cfg);
            let sol = nuspi_cfa::analyze(&p);
            let violations = nuspi_cfa::accept::verify(&sol, &p);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }
}
