//! The measurement logic behind the six `bench_*` binaries, factored
//! out so the regression gate (`bench_gate`) can re-run any suite and
//! compare it against the committed `artifacts/bench/BENCH_*.json`
//! baselines.
//!
//! Each suite returns a [`SuiteRun`]: the human-readable tables the
//! binary prints, plus a [`BenchReport`] with one [`Metric`] per
//! measurement. Metric *names and counts are identical* in smoke and
//! full mode — smoke only shrinks the per-measurement time budget (and
//! so the iteration count), which is what lets `bench_gate --smoke`
//! compare a cheap CI run against the committed full baselines.
//!
//! [`Metric`]: crate::report::Metric

use crate::report::{timed, timed_stable, BenchReport, Table};
use crate::workloads;
use nuspi_cfa::{analyze, analyze_with_attacker, solve, solve_parallel, Constraints};
use nuspi_diagnostics::{lint, LintContext, PassRegistry};
use nuspi_engine::jsonio::escape;
use nuspi_engine::{AnalysisEngine, ProcessInput, Request, Response};
use nuspi_equiv::{check, independence_oracle, mutations, EquivConfig, Verdict};
use nuspi_net::{spawn, DiskStore, NetConfig, StoreConfig};
use nuspi_protocols::{broken_twins, open_examples, suite, wmf};
use nuspi_security::{
    carefulness, confinement, graded_flows_with, n_star, n_star_name, reveals, AbstractLevel,
    IntruderConfig, Knowledge, Policy, SecLattice,
};
use nuspi_semantics::{commitments, eval, explore_tau, CommitConfig, EvalMode, ExecConfig};
use nuspi_syntax::{builder, parse_process, Name, Process, Symbol, Value};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One suite execution: the rendered human tables and the machine
/// report.
pub struct SuiteRun {
    /// What the bench binary prints.
    pub human: String,
    /// What it writes to `artifacts/bench/`.
    pub report: BenchReport,
}

/// Every suite the gate knows about, in gate order.
pub const SUITES: &[&str] = &[
    "solver",
    "engine",
    "lint",
    "lang",
    "semantics",
    "security",
    "equiv",
    "ablation",
];

/// Runs the named suite; `None` for an unknown name.
pub fn run(name: &str, smoke: bool) -> Option<SuiteRun> {
    match name {
        "solver" => Some(solver(smoke)),
        "engine" => Some(engine(smoke)),
        "lint" => Some(lint_suite(smoke)),
        "lang" => Some(lang(smoke)),
        "semantics" => Some(semantics(smoke)),
        "security" => Some(security(smoke)),
        "equiv" => Some(equiv(smoke)),
        "ablation" => Some(ablation(smoke)),
        _ => None,
    }
}

/// The per-measurement stabilisation budget: smoke mode keeps every
/// workload and metric but spends ~15x less wall-clock per number.
fn budget(smoke: bool) -> Duration {
    Duration::from_millis(if smoke { 10 } else { 150 })
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.3}ms", d.as_secs_f64() * 1e3)
}

/// Solver throughput over the parametric workload families, the
/// generation/solve phase split, and sequential-vs-sharded at the
/// largest sizes — plus exact production counts as α-stability canaries.
pub fn solver(smoke: bool) -> SuiteRun {
    let b = budget(smoke);
    let mut report = BenchReport::new("solver", smoke);
    let mut human = String::from("bench_solver: sequential worklist solver\n\n");

    let mut table = Table::new(["benchmark", "n", "mean time"]);
    let mut family = |name: &str, make: &dyn Fn(usize) -> Process, sizes: &[usize]| {
        for &n in sizes {
            let p = make(n);
            let t = timed_stable(b, || {
                let _ = solve(Constraints::generate(&p));
            });
            table.row([format!("solver/{name}"), n.to_string(), fmt_ms(t)]);
            report.time(&format!("{name}/{n}"), t);
        }
    };
    family("relay-chain", &workloads::relay_chain, &[8, 16, 32, 64]);
    family("crypto-chain", &workloads::crypto_chain, &[8, 16, 32, 64]);
    family(
        "star-broadcast",
        &workloads::star_broadcast,
        &[8, 16, 32, 64],
    );
    family("wmf-sessions", &workloads::wmf_sessions, &[2, 4, 8, 16]);
    family("mixer", &workloads::mixer, &[4, 8, 16, 32]);
    human.push_str(&table.render());
    human.push('\n');

    // Phase split: constraint generation is linear, solving dominates.
    let mut phases = Table::new(["benchmark", "mean time"]);
    let p = workloads::crypto_chain(32);
    let t = timed_stable(b, || {
        let _ = Constraints::generate(&p);
    });
    phases.row(["phases/generate-32".to_owned(), fmt_ms(t)]);
    report.time("phases/generate-32", t);
    let t = timed_stable(b, || {
        let _ = solve(Constraints::generate(&p));
    });
    phases.row(["phases/solve-32".to_owned(), fmt_ms(t)]);
    report.time("phases/solve-32", t);
    let wmf4 = workloads::wmf_sessions(4);
    let t = timed_stable(b, || {
        let _ = solve(Constraints::generate(&wmf4));
    });
    phases.row(["phases/wmf4-end-to-end".to_owned(), fmt_ms(t)]);
    report.time("phases/wmf4-end-to-end", t);
    human.push_str(&phases.render());
    human.push('\n');

    // Deterministic outputs: the least solution's size must never move
    // without a deliberate analysis change.
    let sol = solve(Constraints::generate(&p));
    report.exact(
        "crypto-chain-32/productions",
        sol.stats().productions as u64,
    );
    let sol = solve(Constraints::generate(&wmf4));
    report.exact("wmf-sessions-4/productions", sol.stats().productions as u64);

    // The named scenario registry, sequentially: mid-size corpus rows
    // plus a production-count canary pinning the interleaved family's
    // least solution (and, transitively, its SplitMix64 corpus).
    let mut scen = Table::new(["scenario", "mean time"]);
    for name in ["interleaved-100x4", "interleaved-1000x4"] {
        let p = workloads::scenario(name).expect("registered scenario");
        let t = timed_stable(b, || {
            let _ = solve(Constraints::generate(&p));
        });
        scen.row([format!("scenario/{name}"), fmt_ms(t)]);
        report.time(&format!("scenario/{name}"), t);
    }
    let sol = solve(Constraints::generate(
        &workloads::scenario("interleaved-1000x4").expect("registered scenario"),
    ));
    report.exact(
        "interleaved-1000x4/productions",
        sol.stats().productions as u64,
    );
    human.push_str(&scen.render());
    human.push('\n');

    // The lattice-4 scenario column: the same corpus re-analysed under
    // a diamond-4 graded policy. Grammar solving is lattice-free, so
    // the graded cost is exactly the post-solve `AbstractLevel`
    // classification fixpoint; the violation count is a determinism
    // canary like the production counts above.
    let lat = SecLattice::diamond4();
    let mut lat4 = Table::new(["scenario", "level fixpoint", "solve+grade", "violations"]);
    for name in ["interleaved-100x4", "interleaved-1000x4"] {
        let p = workloads::scenario(name).expect("registered scenario");
        let mut policy = Policy::with_lattice(lat.clone());
        policy.grade("v0", lat.secret());
        let sol = solve(Constraints::generate(&p));
        let t_classify = timed_stable(b, || {
            let _ = AbstractLevel::compute(&sol, &policy);
        });
        let t_graded = timed_stable(b, || {
            let sol = solve(Constraints::generate(&p));
            let _ = AbstractLevel::compute(&sol, &policy);
        });
        let violations = graded_flows_with(&policy, sol).violations.len() as u64;
        lat4.row([
            format!("lattice4/{name}"),
            fmt_ms(t_classify),
            fmt_ms(t_graded),
            violations.to_string(),
        ]);
        report.time(&format!("lattice4/{name}/classify"), t_classify);
        report.time(&format!("lattice4/{name}/solve-grade"), t_graded);
        report.exact(&format!("lattice4/{name}/violations"), violations);
    }
    human.push_str(&lat4.render());
    human.push('\n');

    // Work-stealing scaling: sequential vs the parallel solver at 1, 2,
    // 4 and 8 workers, topped by the 10 000-session interleaved corpus.
    // The speedup booleans gate real hardware only — on boxes with
    // fewer cores than workers they pass vacuously, while the plain
    // time entries still gate against the committed baseline.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut par = Table::new(["benchmark", "threads", "mean time", "steals"]);
    for (name, p) in [
        ("wmf-sessions-16", workloads::wmf_sessions(16)),
        ("mixer-32", workloads::mixer(32)),
        (
            "interleaved-10000x4",
            workloads::scenario("interleaved-10000x4").expect("registered scenario"),
        ),
    ] {
        // One untimed warm-up solve so the first measured thread count
        // doesn't also pay the arena's first-touch page faults.
        let _ = solve_parallel(Constraints::generate(&p), 1);
        let mut times = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let mut steals = 0u64;
            let t = timed_stable(b, || {
                let sol = solve_parallel(Constraints::generate(&p), threads);
                steals = sol.stats().per_shard.iter().map(|s| s.steals as u64).sum();
            });
            par.row([
                format!("parallel/{name}"),
                threads.to_string(),
                fmt_ms(t),
                steals.to_string(),
            ]);
            report.time(&format!("parallel/{name}/t{threads}"), t);
            times.push(t.as_secs_f64());
        }
        if name == "interleaved-10000x4" {
            let (s2, s4, s8) = (
                times[0] / times[1],
                times[0] / times[2],
                times[0] / times[3],
            );
            report.info("parallel/interleaved-10000x4/speedup-t2", s2, "x");
            report.info("parallel/interleaved-10000x4/speedup-t4", s4, "x");
            report.info("parallel/interleaved-10000x4/speedup-t8", s8, "x");
            let monotone = (times[0] >= times[1] && times[1] >= times[2]) || cores < 4;
            report.exact(
                "parallel/interleaved-10000x4/monotone-1-2-4",
                u64::from(monotone),
            );
            report.exact(
                "parallel/interleaved-10000x4/speedup-t8-ge-2",
                u64::from(s8 >= 2.0 || cores < 8),
            );
            human.push_str(&format!(
                "interleaved-10000x4 speedups: t2 {s2:.2}x  t4 {s4:.2}x  t8 {s8:.2}x ({cores} core(s))\n"
            ));
        }
    }
    human.push_str(&par.render());
    human.push('\n');

    // Incremental re-solve: a warmed solver re-analyses the corpus
    // after a one-line payload edit (only the edited component misses
    // its cache) and after a digest-identical no-op. The sub-ms boolean
    // is the editor-loop target: protocol-sized input, single edit,
    // under a millisecond to the new least solution.
    let mut inc_table = Table::new(["benchmark", "edit re-solve", "no-op re-solve"]);
    for name in [
        "interleaved-10x4",
        "interleaved-1000x4",
        "interleaved-10000x4",
    ] {
        let p = workloads::scenario(name).expect("registered scenario");
        let edited = edit_one_payload(name);
        let mut inc = nuspi_cfa::IncrementalSolver::new(1);
        inc.solve(&p); // warm the component cache
        let mut flip = false;
        let t_edit = timed_stable(b, || {
            // Alternate the two texts so every iteration is a genuine
            // one-component re-solve, never a no-op.
            flip = !flip;
            let _ = inc.solve(if flip { &edited } else { &p });
        });
        let current = if flip { &edited } else { &p };
        let t_noop = timed_stable(b, || {
            let _ = inc.solve(current);
        });
        inc_table.row([
            format!("incremental/{name}"),
            fmt_ms(t_edit),
            fmt_ms(t_noop),
        ]);
        report.time(&format!("incremental/{name}/edit-resolve"), t_edit);
        report.time(&format!("incremental/{name}/noop-resolve"), t_noop);
        if name == "interleaved-10x4" {
            // The boolean gates *capability*, not load: the best of a
            // few dedicated iterations, so a de-scheduled measurement on
            // a busy CI box cannot flip a deterministic exact metric.
            let best = (0..32)
                .map(|_| {
                    flip = !flip;
                    let target = if flip { &edited } else { &p };
                    let t0 = std::time::Instant::now();
                    let _ = inc.solve(target);
                    t0.elapsed()
                })
                .min()
                .expect("nonempty sample");
            report.exact(
                "incremental/edit-resolve-sub-ms",
                u64::from(best < Duration::from_millis(1)),
            );
        }
    }
    human.push_str(&inc_table.render());
    human.push_str("bench_solver done.\n");
    SuiteRun { human, report }
}

/// The named interleaved scenario with session 0's payload renamed —
/// the "one-line edit" the incremental benchmarks re-solve.
fn edit_one_payload(name: &str) -> Process {
    let (s, d) = name
        .strip_prefix("interleaved-")
        .and_then(|r| r.split_once('x'))
        .expect("interleaved scenario name");
    let src = workloads::interleaved_source(
        s.parse().expect("sessions"),
        d.parse().expect("depth"),
        workloads::INTERLEAVED_SEED,
    );
    // Session 0 seeds its pipeline either in the clear or encrypted;
    // exactly one of the two rewrites applies.
    let edited = src.replacen("<v0>", "<v0edit>", 1);
    let edited = if edited == src {
        src.replacen("{v0, ", "{v0edit, ", 1)
    } else {
        edited
    };
    assert_ne!(edited, src, "payload edit must change the corpus");
    parse_process(&edited).expect("edited corpus parses")
}

/// The 25-case lint batch the engine bench and the round-trip suite use:
/// the 21 closed protocols plus the 4 tracked open examples.
pub fn suite_requests() -> Vec<Request> {
    let mut out = Vec::new();
    for spec in suite() {
        let mut secrets: Vec<String> = spec
            .policy
            .secrets()
            .map(|s| s.as_str().to_owned())
            .collect();
        secrets.sort();
        out.push(Request::Lint {
            process: ProcessInput::Source(spec.source.clone()),
            secrets,
            shards: 1,
        });
    }
    for ex in open_examples() {
        let tracked = builder::restrict(
            n_star_name(),
            ex.process.subst(ex.var, &Value::name(n_star_name())),
        );
        let mut policy = ex.policy.clone();
        policy.add_secret(n_star());
        let mut secrets: Vec<String> = policy.secrets().map(|s| s.as_str().to_owned()).collect();
        secrets.sort();
        out.push(Request::Lint {
            process: ProcessInput::Parsed(tracked),
            secrets,
            shards: 1,
        });
    }
    out
}

/// One JSON `lint` request line per closed protocol in the suite — the
/// wire form of [`suite_requests`]'s closed half (the open examples are
/// engine-internal `Parsed` inputs with no JSON rendering).
fn closed_suite_lines() -> Vec<String> {
    suite()
        .into_iter()
        .map(|spec| {
            let mut secrets: Vec<String> = spec
                .policy
                .secrets()
                .map(|s| format!("\"{}\"", escape(s.as_str())))
                .collect();
            secrets.sort();
            format!(
                "{{\"op\":\"lint\",\"process\":\"{}\",\"secrets\":[{}]}}\n",
                escape(&spec.source),
                secrets.join(",")
            )
        })
        .collect()
}

/// The q-th percentile of an ascending-sorted latency series.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty(), "no samples");
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Engine throughput over the protocol suite, cold vs warm cache, plus
/// the `serve-net` phase: the same engine behind the TCP transport
/// under concurrent closed-loop clients and a disk store. The warm
/// rounds and the cache/store counters are identical in smoke and full
/// mode, so the exact metrics always match the committed baseline.
pub fn engine(smoke: bool) -> SuiteRun {
    const WARM_ROUNDS: u32 = 5;
    let requests = suite_requests();
    let cases = requests.len();
    let engine = AnalysisEngine::with_jobs(0); // one worker per core
    let mut human = format!(
        "bench_engine: {cases}-case suite, {} worker(s), cold batch then {WARM_ROUNDS} warm rounds\n\n",
        engine.jobs()
    );

    let (cold_responses, cold) = timed(|| engine.submit_requests(requests.clone()));
    assert!(
        cold_responses.iter().all(Response::is_ok),
        "cold batch must succeed"
    );
    let mut warm_total = Duration::ZERO;
    for round in 0..WARM_ROUNDS {
        let (responses, took) = timed(|| engine.submit_requests(requests.clone()));
        assert!(
            responses.iter().all(|r| r.cached),
            "warm round {round} must be served from the cache"
        );
        warm_total += took;
    }
    let warm = warm_total / WARM_ROUNDS;
    let stats = engine.stats();
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);

    let mut table = Table::new(["phase", "batch time", "per case", "throughput"]);
    for (phase, took) in [("cold", cold), ("warm (mean)", warm)] {
        table.row([
            phase.to_owned(),
            fmt_ms(took),
            format!("{:.3}ms", took.as_secs_f64() * 1e3 / cases as f64),
            format!("{:.0} case/s", cases as f64 / took.as_secs_f64()),
        ]);
    }
    human.push_str(&table.render());
    human.push_str(&format!(
        "speedup: {speedup:.1}x   hit rate: {:.3}   cache: {} entries, {} bytes\n",
        stats.hit_rate(),
        stats.cache_entries,
        stats.cache_bytes
    ));
    assert!(
        warm < cold,
        "warm-cache batch ({warm:?}) must beat the cold batch ({cold:?})"
    );

    // serve-net: the TCP transport under concurrent clients, mixed
    // cold/warm traffic. Round 0 races the clients over a cold engine
    // (real computes, disk-store admissions); later rounds are
    // memory-cache hits, so the warm percentiles measure the network
    // round-trip and protocol framing, not the analyses.
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 4;
    let lines = Arc::new(closed_suite_lines());
    let closed_cases = lines.len();

    let store_dir =
        std::env::temp_dir().join(format!("nuspi-bench-serve-net-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut store_cfg = StoreConfig::at(&store_dir);
    store_cfg.fsync = false; // measure the transport, not disk syncs
    let mut net_engine = AnalysisEngine::with_jobs(0);
    net_engine.set_store(Arc::new(
        DiskStore::open(store_cfg).expect("bench store opens"),
    ));
    let net_engine = Arc::new(net_engine);
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let server = spawn(Arc::clone(&net_engine), listener, NetConfig::default())
        .expect("serve-net server spawns");
    let addr = server.local_addr();

    let wall = Instant::now();
    // Clients align on a barrier between rounds so a straggler's cold
    // computes never pollute another client's warm samples.
    let gate = Arc::new(std::sync::Barrier::new(CLIENTS));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let lines = Arc::clone(&lines);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
                let mut samples = vec![Vec::new(); ROUNDS];
                let mut response = String::new();
                for bucket in &mut samples {
                    gate.wait();
                    for line in lines.iter() {
                        let sent = Instant::now();
                        stream.write_all(line.as_bytes()).expect("send request");
                        response.clear();
                        reader.read_line(&mut response).expect("read response");
                        bucket.push(sent.elapsed());
                        assert!(response.contains("\"status\":\"ok\""), "{response}");
                    }
                }
                samples
            })
        })
        .collect();
    let mut cold_lat = Vec::new();
    let mut warm_lat = Vec::new();
    for handle in clients {
        let mut rounds = handle.join().expect("client thread").into_iter();
        cold_lat.append(&mut rounds.next().expect("cold round"));
        for mut bucket in rounds {
            warm_lat.append(&mut bucket);
        }
    }
    let wall = wall.elapsed();

    // Quiet warm-latency phase: one client, closed loop, warm engine —
    // the per-request network and framing overhead without contention,
    // stable enough for the time gate (the concurrent percentiles above
    // are scheduler-dependent, so they are reported as info only).
    const PASSES: usize = 6;
    let mut quiet = Vec::new();
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
        let mut response = String::new();
        for _ in 0..PASSES {
            for line in lines.iter() {
                let sent = Instant::now();
                stream.write_all(line.as_bytes()).expect("send request");
                response.clear();
                reader.read_line(&mut response).expect("read response");
                quiet.push(sent.elapsed());
            }
        }
    } // dropping the stream closes the connection

    server.drain();
    let net = server.join();
    let store = net_engine.stats().store.expect("store attached");
    let _ = std::fs::remove_dir_all(&store_dir);

    let rps = (CLIENTS * ROUNDS * closed_cases) as f64 / wall.as_secs_f64().max(1e-9);
    cold_lat.sort_unstable();
    warm_lat.sort_unstable();
    quiet.sort_unstable();
    let cold_p50 = percentile(&cold_lat, 0.50);
    let mixed_p50 = percentile(&warm_lat, 0.50);
    let mixed_p99 = percentile(&warm_lat, 0.99);
    let quiet_p50 = percentile(&quiet, 0.50);
    let quiet_p99 = percentile(&quiet, 0.99);

    human.push_str(&format!(
        "\nserve-net: {CLIENTS} clients x {ROUNDS} rounds x {closed_cases} closed cases over loopback TCP\n"
    ));
    let mut net_table = Table::new(["phase", "p50", "p99"]);
    net_table.row([
        format!("cold round ({CLIENTS} clients)"),
        fmt_ms(cold_p50),
        fmt_ms(percentile(&cold_lat, 0.99)),
    ]);
    net_table.row([
        format!("warm rounds ({CLIENTS} clients)"),
        fmt_ms(mixed_p50),
        fmt_ms(mixed_p99),
    ]);
    net_table.row([
        "warm quiet (1 client)".to_owned(),
        fmt_ms(quiet_p50),
        fmt_ms(quiet_p99),
    ]);
    human.push_str(&net_table.render());
    human.push_str(&format!(
        "sustained: {rps:.0} responses/s   store: {} admits, {} entries\n",
        store.admits, store.entries
    ));

    let mut report = BenchReport::new("engine", smoke);
    report.time("cold-batch", cold);
    report.time("warm-batch", warm);
    report.info("speedup", speedup, "x");
    report.info("hit-rate", stats.hit_rate(), "ratio");
    report.exact("cases", cases as u64);
    report.exact("cache/hits", stats.cache.hits);
    report.exact("cache/misses", stats.cache.misses);
    report.exact("cache/entries", stats.cache_entries as u64);
    report.time("serve-net/quiet-p50", quiet_p50);
    report.info("serve-net/quiet-p99", quiet_p99.as_secs_f64() * 1e3, "ms");
    report.info("serve-net/mixed-p50", mixed_p50.as_secs_f64() * 1e3, "ms");
    report.info("serve-net/mixed-p99", mixed_p99.as_secs_f64() * 1e3, "ms");
    report.info("serve-net/cold-p50", cold_p50.as_secs_f64() * 1e3, "ms");
    report.info("serve-net/rps", rps, "resp/s");
    report.exact("serve-net/clients", CLIENTS as u64);
    report.exact("serve-net/responses", net.responses);
    report.exact("serve-net/store-admits", store.admits);
    report.exact("serve-net/store-entries", store.entries);
    SuiteRun { human, report }
}

/// Lint overhead over a bare attacked solve, per protocol, plus the
/// solver-free syntactic pass.
pub fn lint_suite(smoke: bool) -> SuiteRun {
    let b = budget(smoke);
    let mut report = BenchReport::new("lint", smoke);
    let mut human = String::from("bench_lint: full lint vs bare solve vs syntactic-only\n\n");
    let mut table = Table::new([
        "protocol",
        "bare solve",
        "full lint",
        "lattice-4 lint",
        "syntactic only",
        "lint/solve",
    ]);
    let specs = suite();
    report.exact("protocols", specs.len() as u64);
    let lat = SecLattice::diamond4();
    for spec in specs {
        let secret = spec.policy.secrets().collect();
        // The lattice-4 column lints the same protocol under a graded
        // diamond-4 policy with the same secrets: everything the binary
        // run does, plus the AbstractLevel fixpoint and the E009 pass.
        let mut graded_policy = Policy::with_lattice(lat.clone());
        for s in spec.policy.secrets() {
            graded_policy.add_secret(s);
        }
        let t_solve = timed_stable(b, || {
            let _ = analyze_with_attacker(&spec.process, &secret);
        });
        let t_lint = timed_stable(b, || {
            let _ = lint(&spec.process, &spec.policy);
        });
        let t_lint4 = timed_stable(b, || {
            let _ = lint(&spec.process, &graded_policy);
        });
        let t_syn = timed_stable(b, || {
            let ctx = LintContext::new(&spec.process, &spec.policy);
            let _ = PassRegistry::syntactic_only().run(&ctx);
        });
        table.row([
            spec.name.to_owned(),
            fmt_ms(t_solve),
            fmt_ms(t_lint),
            fmt_ms(t_lint4),
            format!("{:.4}ms", t_syn.as_secs_f64() * 1e3),
            format!("{:.2}x", t_lint.as_secs_f64() / t_solve.as_secs_f64()),
        ]);
        report.time(&format!("solve/{}", spec.name), t_solve);
        report.time(&format!("lint/{}", spec.name), t_lint);
        report.time(&format!("lint4/{}", spec.name), t_lint4);
        report.time(&format!("syntactic/{}", spec.name), t_syn);
        report.info(
            &format!("ratio/{}", spec.name),
            t_lint.as_secs_f64() / t_solve.as_secs_f64(),
            "x",
        );
    }
    human.push_str(&table.render());
    SuiteRun { human, report }
}

/// The `examples/lang/` ladder, embedded at compile time so the suite
/// measures exactly the committed programs.
const LANG_LADDER: &[(&str, &str)] = &[
    (
        "01_hello",
        include_str!("../../../examples/lang/01_hello.nu"),
    ),
    (
        "02_channels",
        include_str!("../../../examples/lang/02_channels.nu"),
    ),
    (
        "03_channels_leak",
        include_str!("../../../examples/lang/03_channels_leak.nu"),
    ),
    (
        "04_functions",
        include_str!("../../../examples/lang/04_functions.nu"),
    ),
    (
        "05_functions_leak",
        include_str!("../../../examples/lang/05_functions_leak.nu"),
    ),
    (
        "06_cycle",
        include_str!("../../../examples/lang/06_cycle.nu"),
    ),
    (
        "07_cycle_leak",
        include_str!("../../../examples/lang/07_cycle_leak.nu"),
    ),
    (
        "08_secret",
        include_str!("../../../examples/lang/08_secret.nu"),
    ),
    (
        "09_secret_leak",
        include_str!("../../../examples/lang/09_secret_leak.nu"),
    ),
    (
        "10_graded",
        include_str!("../../../examples/lang/10_graded.nu"),
    ),
    (
        "11_graded_leak",
        include_str!("../../../examples/lang/11_graded_leak.nu"),
    ),
    (
        "12_hidden_leak",
        include_str!("../../../examples/lang/12_hidden_leak.nu"),
    ),
];

/// The annotated-source frontend over the `examples/lang/` ladder:
/// frontend-only (parse + lower) vs the full source-to-verdict check
/// per program, plus the engine's `analyze_source` path cold vs warm.
pub fn lang(smoke: bool) -> SuiteRun {
    const WARM_ROUNDS: u32 = 5;
    let b = budget(smoke);
    let mut report = BenchReport::new("lang", smoke);
    let mut human = String::from("bench_lang: annotated-source frontend over the ladder\n\n");

    let mut table = Table::new(["program", "parse+lower", "full check", "verdict"]);
    let mut insecure = 0u64;
    for (name, src) in LANG_LADDER {
        let t_front = timed_stable(b, || {
            let _ = nuspi_lang::compile(name, src).expect("ladder program compiles");
        });
        let report_run = nuspi_lang::check(name, src);
        let verdict = report_run.verdict.as_str();
        if verdict == "insecure" {
            insecure += 1;
        }
        let t_check = timed_stable(b, || {
            let _ = nuspi_lang::check(name, src);
        });
        table.row([
            (*name).to_owned(),
            format!("{:.4}ms", t_front.as_secs_f64() * 1e3),
            fmt_ms(t_check),
            verdict.to_owned(),
        ]);
        report.time(&format!("frontend/{name}"), t_front);
        report.time(&format!("check/{name}"), t_check);
    }
    human.push_str(&table.render());
    report.exact("ladder/programs", LANG_LADDER.len() as u64);
    report.exact("ladder/insecure", insecure);

    // The engine path: a cold batch computes every program, warm
    // batches are pure cache hits (the key is the lowered process's
    // α-invariant digest, so a formatting edit would hit too).
    let engine = AnalysisEngine::with_jobs(0);
    let requests: Vec<Request> = LANG_LADDER
        .iter()
        .map(|(name, src)| Request::AnalyzeSource {
            file: format!("{name}.nu"),
            source: (*src).to_owned(),
            shards: 1,
        })
        .collect();
    let (cold_responses, cold) = timed(|| engine.submit_requests(requests.clone()));
    assert!(
        cold_responses.iter().all(Response::is_ok),
        "cold analyze_source batch must succeed"
    );
    let mut warm_total = Duration::ZERO;
    for round in 0..WARM_ROUNDS {
        let (responses, took) = timed(|| engine.submit_requests(requests.clone()));
        assert!(
            responses.iter().all(|r| r.cached),
            "warm round {round} must be served from the cache"
        );
        warm_total += took;
    }
    let warm = warm_total / WARM_ROUNDS;
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    human.push_str(&format!(
        "\nengine analyze_source: cold {} warm {} speedup {speedup:.1}x\n",
        fmt_ms(cold),
        fmt_ms(warm)
    ));
    report.time("engine/cold-batch", cold);
    report.time("engine/warm-batch", warm);
    report.info("engine/speedup", speedup, "x");
    let stats = engine.stats();
    report.exact("engine/cache-hits", stats.cache.hits);
    report.exact("engine/cache-misses", stats.cache.misses);

    human.push_str("bench_lang done.\n");
    SuiteRun { human, report }
}

/// The operational-semantics engine: evaluation, commitment enumeration,
/// and bounded exploration.
pub fn semantics(smoke: bool) -> SuiteRun {
    let b = budget(smoke);
    let mut report = BenchReport::new("semantics", smoke);
    let mut human = String::from("bench_semantics: evaluation, commitments, exploration\n\n");
    let mut table = Table::new(["benchmark", "mean time"]);

    for depth in [2usize, 8, 32] {
        let mut e = builder::zero();
        for i in 0..depth {
            e = builder::enc(
                vec![e],
                Name::global(format!("r{i}").as_str()),
                builder::name("k"),
            );
        }
        let t = timed_stable(b, || {
            eval(&e, EvalMode::NuSpi).unwrap();
        });
        table.row([
            format!("eval/nested-encryption-{depth}"),
            format!("{:.4}ms", t.as_secs_f64() * 1e3),
        ]);
        report.time(&format!("eval/nested-encryption-{depth}"), t);
    }

    let wmf_p = wmf::wmf().process;
    let t = timed_stable(b, || {
        let _ = commitments(&wmf_p, &CommitConfig::default());
    });
    table.row(["commitments/wmf-initial".to_owned(), fmt_ms(t)]);
    report.time("commitments/wmf-initial", t);
    report.exact(
        "commitments/wmf-initial/count",
        commitments(&wmf_p, &CommitConfig::default()).len() as u64,
    );
    let broadcast = workloads::star_broadcast(16);
    let t = timed_stable(b, || {
        let _ = commitments(&broadcast, &CommitConfig::default());
    });
    table.row(["commitments/star-broadcast-16".to_owned(), fmt_ms(t)]);
    report.time("commitments/star-broadcast-16", t);

    let t = timed_stable(b, || {
        let _ = explore_tau(&wmf_p, &ExecConfig::default(), |_, _| true);
    });
    table.row(["explore/wmf-exhaustive".to_owned(), fmt_ms(t)]);
    report.time("explore/wmf-exhaustive", t);
    let chain = workloads::relay_chain(8);
    let t = timed_stable(b, || {
        let _ = explore_tau(&chain, &ExecConfig::default(), |_, _| true);
    });
    table.row(["explore/relay-chain-8".to_owned(), fmt_ms(t)]);
    report.time("explore/relay-chain-8", t);

    human.push_str(&table.render());
    human.push_str("bench_semantics done.\n");
    SuiteRun { human, report }
}

/// The security layer: confinement per protocol, the carefulness
/// monitor, the Dolev–Yao closure, and the bounded intruder on a
/// known-broken protocol.
pub fn security(smoke: bool) -> SuiteRun {
    let b = budget(smoke);
    let mut report = BenchReport::new("security", smoke);
    let mut human = String::from("bench_security: confinement, carefulness, Dolev-Yao\n\n");
    let mut table = Table::new(["benchmark", "mean time"]);

    let mut confined = 0u64;
    for spec in suite() {
        let t = timed_stable(b, || {
            let _ = confinement(&spec.process, &spec.policy);
        });
        table.row([format!("confinement/{}", spec.name), fmt_ms(t)]);
        report.time(&format!("confinement/{}", spec.name), t);
        if confinement(&spec.process, &spec.policy).is_confined() {
            confined += 1;
        }
    }
    report.exact("confinement/confined-count", confined);

    let spec = wmf::wmf();
    let cfg = ExecConfig::default();
    let t = timed_stable(b, || {
        let _ = carefulness(&spec.process, &spec.policy, &cfg);
    });
    table.row(["carefulness/wmf".to_owned(), fmt_ms(t)]);
    report.time("carefulness/wmf", t);

    for n in [8usize, 32, 128] {
        let t = timed_stable(b, || {
            let mut k = Knowledge::from_names(["c"]);
            // A chain of ciphertexts, each key released by the next.
            for i in (0..n).rev() {
                let key = format!("k{i}");
                let next = format!("k{}", i + 1);
                k.learn(Value::enc(
                    vec![Value::name(next.as_str())],
                    Name::global("r"),
                    Value::name(key.as_str()),
                ));
            }
            k.learn(Value::name("k0"));
            assert!(k.can_derive(&Value::name(format!("k{n}").as_str())));
        });
        table.row([format!("dolev-yao/closure-{n}"), fmt_ms(t)]);
        report.time(&format!("dolev-yao/closure-{n}"), t);
    }

    let spec = wmf::wmf_key_in_clear();
    let k0 = Knowledge::from_names(spec.public_channels.iter().copied());
    let icfg = IntruderConfig::default();
    let t = timed_stable(b, || {
        reveals(&spec.process, &k0, Symbol::intern("m"), &icfg).expect("attack must be found");
    });
    table.row(["dolev-yao/attack-wmf-key-in-clear".to_owned(), fmt_ms(t)]);
    report.time("dolev-yao/attack-wmf-key-in-clear", t);

    human.push_str(&table.render());
    human.push_str("bench_security done.\n");
    SuiteRun { human, report }
}

/// The bounded hedged-bisimulation backend: direct twin games, the
/// dynamic Theorem 5 oracle on honest and flawed protocols, the miner's
/// mutant enumeration, and the engine's cached `equiv` path. Verdict
/// codes (0 bisimilar / 1 distinguished / 2 unknown) and play meters are
/// exact canaries — the game is deterministic by construction, so any
/// drift is a behavioural change, not noise.
pub fn equiv(smoke: bool) -> SuiteRun {
    const WARM_ROUNDS: u32 = 5;
    let b = budget(smoke);
    let mut report = BenchReport::new("equiv", smoke);
    let mut human = String::from("bench_equiv: bounded hedged-bisimulation games\n\n");
    // Pinned budgets (the golden wall's): baselines survive default
    // re-tunes, and smoke and full mode play the identical game.
    let cfg = EquivConfig {
        game_depth: 5,
        max_plays: 4_000,
        tau_depth: 20,
        tau_states: 600,
        max_injections: 16,
        ..EquivConfig::default()
    };
    let verdict_code = |v: &Verdict| -> u64 {
        match v {
            Verdict::Bisimilar => 0,
            Verdict::Distinguished { .. } => 1,
            Verdict::Unknown { .. } => 2,
        }
    };
    let public_names = |spec: &nuspi_protocols::ProtocolSpec, other: &Process| -> Vec<Symbol> {
        let mut v: Vec<Symbol> = spec
            .process
            .free_names()
            .into_iter()
            .chain(other.free_names())
            .map(|n| n.canonical())
            .filter(|s| spec.policy.is_public(*s))
            .chain(spec.public_channels.iter().copied())
            .collect();
        v.sort_by_key(|s| s.as_str().to_owned());
        v.dedup();
        v
    };

    // Direct games: the small binder pairs plus each honest/broken twin.
    let mut table = Table::new(["game", "mean time", "verdict", "plays"]);
    let small: Vec<(String, Process, Process, Vec<Symbol>)> = vec![
        (
            "new-vs-hide".to_owned(),
            parse_process("(new n) c<n>.0").unwrap(),
            parse_process("(hide n) c<n>.0").unwrap(),
            vec![Symbol::intern("c")],
        ),
        (
            "sealed-twins".to_owned(),
            parse_process("(new k) c<{a, new r}:k>.0").unwrap(),
            parse_process("(new k2) c<{b, new r2}:k2>.0").unwrap(),
            vec![
                Symbol::intern("a"),
                Symbol::intern("b"),
                Symbol::intern("c"),
            ],
        ),
    ];
    let twins: Vec<(String, Process, Process, Vec<Symbol>)> = broken_twins()
        .into_iter()
        .map(|(honest, broken)| {
            let public = public_names(&honest, &broken.process);
            (
                format!("{}-vs-{}", honest.name, broken.name),
                honest.process,
                broken.process,
                public,
            )
        })
        .collect();
    for (name, left, right, public) in small.iter().chain(&twins) {
        let t = timed_stable(b, || {
            let _ = check(left, right, public, &cfg);
        });
        let r = check(left, right, public, &cfg);
        table.row([
            format!("game/{name}"),
            fmt_ms(t),
            r.verdict.tag().to_owned(),
            r.plays.to_string(),
        ]);
        report.time(&format!("game/{name}"), t);
        report.exact(&format!("game/{name}/verdict"), verdict_code(&r.verdict));
        report.exact(&format!("game/{name}/plays"), r.plays as u64);
        if !t.is_zero() {
            report.info(
                &format!("game/{name}/plays-per-sec"),
                r.plays as f64 / t.as_secs_f64(),
                "plays/s",
            );
        }
    }
    human.push_str(&table.render());
    human.push('\n');

    // The Theorem 5 oracle on one honest and one flawed protocol per
    // twin family: the flawed side must come out distinguished.
    let mut oracle_table = Table::new(["oracle", "mean time", "verdict", "plays"]);
    for spec in suite().into_iter().filter(|s| {
        matches!(
            s.name,
            "wmf" | "wmf-key-in-clear" | "ns-lowe" | "ns-lowe-no-identity"
        )
    }) {
        let (open, x) = spec
            .process
            .abstract_restriction(spec.secret)
            .expect("suite spec abstracts");
        let public = public_names(&spec, &open);
        let t = timed_stable(b, || {
            let _ = independence_oracle(&open, x, &public, &cfg);
        });
        let r = independence_oracle(&open, x, &public, &cfg);
        oracle_table.row([
            format!("oracle/{}", spec.name),
            fmt_ms(t),
            r.verdict.tag().to_owned(),
            r.plays.to_string(),
        ]);
        report.time(&format!("oracle/{}", spec.name), t);
        report.exact(
            &format!("oracle/{}/verdict", spec.name),
            verdict_code(&r.verdict),
        );
        report.exact(&format!("oracle/{}/plays", spec.name), r.plays as u64);
    }
    human.push_str(&oracle_table.render());
    human.push('\n');

    // The miner: enumeration cost and mutant counts for the honest twins.
    let mut miner_table = Table::new(["miner", "mean time", "mutants"]);
    for (honest, _) in broken_twins() {
        let t = timed_stable(b, || {
            let _ = mutations(&honest.process);
        });
        let count = mutations(&honest.process).len() as u64;
        miner_table.row([
            format!("miner/{}", honest.name),
            fmt_ms(t),
            count.to_string(),
        ]);
        report.time(&format!("miner/{}", honest.name), t);
        report.exact(&format!("miner/{}/mutants", honest.name), count);
    }
    human.push_str(&miner_table.render());
    human.push('\n');

    // The engine path: a cold `equiv` batch, then pure pair-digest cache
    // hits — order-swapped on the warm rounds to exercise the
    // order-independent key.
    let engine = AnalysisEngine::new(nuspi_engine::EngineConfig {
        jobs: 0,
        equiv: cfg,
        ..nuspi_engine::EngineConfig::default()
    });
    let pairs: Vec<(String, String)> = small
        .iter()
        .chain(&twins)
        .map(|(_, l, r, _)| (l.to_string(), r.to_string()))
        .collect();
    let cold_requests: Vec<Request> = pairs.iter().map(|(l, r)| Request::equiv(l, r)).collect();
    let warm_requests: Vec<Request> = pairs.iter().map(|(l, r)| Request::equiv(r, l)).collect();
    let (cold_responses, cold) = timed(|| engine.submit_requests(cold_requests));
    assert!(
        cold_responses.iter().all(Response::is_ok),
        "cold equiv batch must succeed"
    );
    let mut warm_total = Duration::ZERO;
    for round in 0..WARM_ROUNDS {
        let (responses, took) = timed(|| engine.submit_requests(warm_requests.clone()));
        assert!(
            responses.iter().all(|r| r.cached),
            "warm round {round} must hit the pair-digest cache"
        );
        warm_total += took;
    }
    let warm = warm_total / WARM_ROUNDS;
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    human.push_str(&format!(
        "engine equiv: cold {} warm (order-swapped) {} speedup {speedup:.1}x\n",
        fmt_ms(cold),
        fmt_ms(warm)
    ));
    report.time("engine/cold-batch", cold);
    report.time("engine/warm-batch", warm);
    report.info("engine/speedup", speedup, "x");
    let stats = engine.stats();
    report.exact("engine/cache-hits", stats.cache.hits);
    report.exact("engine/cache-misses", stats.cache.misses);
    report.exact("engine/cases", pairs.len() as u64);

    human.push_str("bench_equiv done.\n");
    SuiteRun { human, report }
}

/// Design-choice ablations: attacker closure on/off, replication
/// budget, and νSPI vs classic-spi evaluation.
pub fn ablation(smoke: bool) -> SuiteRun {
    let b = budget(smoke);
    let mut report = BenchReport::new("ablation", smoke);
    let mut human = String::from("bench_ablation: design-choice ablations\n\n");
    let mut table = Table::new(["benchmark", "mean time"]);

    for n in [2usize, 4, 8] {
        let p = workloads::wmf_sessions(n);
        let secrets: HashSet<_> = (0..n)
            .flat_map(|i| {
                [
                    format!("m{i}"),
                    format!("kAS{i}"),
                    format!("kBS{i}"),
                    format!("kAB{i}"),
                ]
            })
            .map(|s| Symbol::intern(&s))
            .collect();
        let t = timed_stable(b, || {
            let _ = analyze(&p);
        });
        table.row([format!("attacker-closure/plain-{n}"), fmt_ms(t)]);
        report.time(&format!("attacker-closure/plain-{n}"), t);
        let t = timed_stable(b, || {
            let _ = analyze_with_attacker(&p, &secrets);
        });
        table.row([format!("attacker-closure/closed-{n}"), fmt_ms(t)]);
        report.time(&format!("attacker-closure/closed-{n}"), t);
    }

    let p = parse_process("!(ping<0>.0 | ping(x).pong<x>.0)").unwrap();
    for rep in [1u32, 2, 3] {
        let cfg = CommitConfig {
            mode: EvalMode::NuSpi,
            rep_budget: rep,
        };
        let t = timed_stable(b, || {
            let _ = commitments(&p, &cfg);
        });
        table.row([format!("rep-budget/{rep}"), fmt_ms(t)]);
        report.time(&format!("rep-budget/{rep}"), t);
    }

    let mut e = builder::zero();
    for i in 0..16 {
        e = builder::enc(
            vec![e],
            Name::global(format!("r{i}").as_str()),
            builder::name("k"),
        );
    }
    let t = timed_stable(b, || {
        eval(&e, EvalMode::NuSpi).unwrap();
    });
    table.row(["eval-mode/nuspi-fresh-confounders".to_owned(), fmt_ms(t)]);
    report.time("eval-mode/nuspi-fresh-confounders", t);
    let t = timed_stable(b, || {
        eval(&e, EvalMode::ClassicSpi).unwrap();
    });
    table.row(["eval-mode/classic-spi".to_owned(), fmt_ms(t)]);
    report.time("eval-mode/classic-spi", t);

    human.push_str(&table.render());
    human.push_str("bench_ablation done.\n");
    SuiteRun { human, report }
}
