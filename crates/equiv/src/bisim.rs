//! The bounded hedged-bisimulation game.
//!
//! [`check`] plays the attacker against both processes at once over the
//! commitment LTS, weak on `τ`: a game state is a process pair plus a
//! [`Hedge`]. Each round the attacker picks a side, a `τ`-reachable
//! state, and a visible commitment on a channel the hedge knows (for
//! inputs, also a correspondingly-synthesisable message pair to inject);
//! the defender replies with any corresponding commitment from the other
//! side's `τ`-closure. The attacker wins a move when *every* defender
//! reply fails — the observed value pair is [`Inconsistency`]-distinct,
//! or play from the successor pair is already won.
//!
//! ## Soundness discipline
//!
//! Budgets truncate the game in both directions, and each direction is
//! accounted separately so the final verdict is honest:
//!
//! * `Bisimilar` is reported only when **no** budget was hit anywhere:
//!   the game tree was explored exhaustively and the attacker never wins.
//! * `Distinguished` is derived only from moves whose *defender*
//!   enumeration was complete (the defender's `τ`-closure was not
//!   truncated); every hedge inconsistency is a concrete experiment, so
//!   the trace is a genuine attacker strategy.
//! * Anything else is `Unknown` with the sorted set of exhausted budgets.
//!
//! The search iteratively deepens on game depth, so reported
//! distinguishing traces are shortest-first and independent of budget
//! slack. Memoisation keys are index-normalised exact renderings of
//! (left, right, hedge) — α-invariant across runs and worker counts, so
//! verdicts, play counts, and traces are bit-identical at any parallelism.

use crate::hedge::Hedge;
use nuspi_semantics::{tau_closure, Action, Agent, Commitment, EvalMode, ExecConfig};
use nuspi_syntax::{builder, canonical_digest, Process, StableHasher128, Symbol, Value};
use std::collections::{BTreeSet, HashMap};
use std::hash::Hasher as _;
use std::rc::Rc;

/// Budgets of the bounded game.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EquivConfig {
    /// Maximum visible-move rounds (iterative-deepening ceiling).
    pub game_depth: usize,
    /// Total game-position budget across all deepening rounds.
    pub max_plays: usize,
    /// `τ`-closure depth per position.
    pub tau_depth: usize,
    /// `τ`-closure state budget per position.
    pub tau_states: usize,
    /// Injected message-pair candidates per input move.
    pub max_injections: usize,
    /// Replication unfolding budget of the commitment semantics.
    pub rep_budget: u32,
}

impl Default for EquivConfig {
    fn default() -> EquivConfig {
        EquivConfig {
            game_depth: 8,
            max_plays: 20_000,
            tau_depth: 12,
            tau_states: 160,
            max_injections: 6,
            rep_budget: 1,
        }
    }
}

impl EquivConfig {
    fn exec(&self) -> ExecConfig {
        ExecConfig {
            mode: EvalMode::NuSpi,
            rep_budget: self.rep_budget,
            max_depth: self.tau_depth,
            max_states: self.tau_states,
        }
    }
}

/// The outcome of a bounded equivalence check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The game tree was exhausted and the attacker never wins: the
    /// processes are hedged-bisimilar within the model.
    Bisimilar,
    /// The attacker wins: `trace` is its strategy, one rendered step per
    /// line, ending in the experiment that tells the sides apart.
    Distinguished {
        /// The distinguishing strategy, rendered canonically.
        trace: Vec<String>,
    },
    /// A budget was exhausted before either answer: `budgets` is the
    /// sorted list of budget names that were hit.
    Unknown {
        /// Exhausted budget names (`"depth"`, `"injections"`, `"plays"`,
        /// `"tau"`).
        budgets: Vec<String>,
    },
}

impl Verdict {
    /// The wire tag: `"bisimilar"`, `"distinguished"`, or `"unknown"`.
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Bisimilar => "bisimilar",
            Verdict::Distinguished { .. } => "distinguished",
            Verdict::Unknown { .. } => "unknown",
        }
    }
}

/// A verdict plus exploration meters (deterministic at any worker count).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EquivReport {
    /// The verdict.
    pub verdict: Verdict,
    /// Game positions examined across all deepening rounds.
    pub plays: usize,
    /// The deepening round the search ended on (0 = digest fast path).
    pub depth: usize,
}

/// Checks `left ∼ right` under a hedge seeding each name in `public` as
/// known to the attacker on both sides.
pub fn check(left: &Process, right: &Process, public: &[Symbol], cfg: &EquivConfig) -> EquivReport {
    let hedge = Hedge::with_public_names(&sorted_unique(public));
    check_with_hedge(left, right, hedge, cfg)
}

/// Checks `left ∼ right` from an explicit initial hedge.
pub fn check_with_hedge(
    left: &Process,
    right: &Process,
    hedge: Hedge,
    cfg: &EquivConfig,
) -> EquivReport {
    let _span = nuspi_obs::span!("equiv.check");
    if canonical_digest(left) == canonical_digest(right) {
        // α-equivalent processes are bisimilar under any consistent
        // hedge that pairs their free names with themselves.
        count_verdict("bisimilar");
        return EquivReport {
            verdict: Verdict::Bisimilar,
            plays: 0,
            depth: 0,
        };
    }
    let mut game = Game {
        cfg: *cfg,
        plays: 0,
        exhausted: BTreeSet::new(),
        depth_cutoff: false,
        memo: HashMap::new(),
        closures: HashMap::new(),
    };
    let mut depth = 0;
    let mut out_of_plays = false;
    let mut report_verdict = None;
    for fuel in 1..=cfg.game_depth {
        depth = fuel;
        game.depth_cutoff = false;
        game.memo.clear();
        match game.play(left, right, &hedge, fuel) {
            Outcome::Distinguished(trace) => {
                report_verdict = Some(Verdict::Distinguished { trace });
                break;
            }
            Outcome::NoDistinction => {
                if game.plays >= cfg.max_plays {
                    out_of_plays = true;
                    break;
                }
                if !game.depth_cutoff && game.exhausted.is_empty() {
                    report_verdict = Some(Verdict::Bisimilar);
                    break;
                }
            }
        }
    }
    let verdict = report_verdict.unwrap_or_else(|| {
        let mut budgets = game.exhausted.clone();
        if out_of_plays {
            budgets.insert("plays");
        }
        if game.depth_cutoff {
            budgets.insert("depth");
        }
        Verdict::Unknown {
            budgets: budgets.into_iter().map(str::to_owned).collect(),
        }
    });
    count_verdict(verdict.tag());
    if nuspi_obs::enabled() {
        nuspi_obs::counter("equiv.plays", game.plays as u64);
    }
    EquivReport {
        verdict,
        plays: game.plays,
        depth,
    }
}

fn count_verdict(tag: &'static str) {
    if nuspi_obs::enabled() {
        match tag {
            "bisimilar" => nuspi_obs::counter("equiv.verdict.bisimilar", 1),
            "distinguished" => nuspi_obs::counter("equiv.verdict.distinguished", 1),
            _ => nuspi_obs::counter("equiv.verdict.unknown", 1),
        }
    }
}

fn sorted_unique(names: &[Symbol]) -> Vec<Symbol> {
    let mut v: Vec<Symbol> = names.to_vec();
    v.sort_by_key(|s| s.as_str().to_owned());
    v.dedup();
    v
}

/// Which process the attacker acts on this move.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Side {
    Lhs,
    Rhs,
}

impl Side {
    fn name(self) -> &'static str {
        match self {
            Side::Lhs => "lhs",
            Side::Rhs => "rhs",
        }
    }

    fn other(self) -> &'static str {
        match self {
            Side::Lhs => "rhs",
            Side::Rhs => "lhs",
        }
    }
}

enum Outcome {
    /// The attacker wins from here; the trace is its strategy.
    Distinguished(Vec<String>),
    /// No winning move found (exact only if no budget flag was raised).
    NoDistinction,
}

/// One attacker move, with the defender's candidate replies.
struct Move {
    /// Rendered step description (canonical, index-free).
    step: String,
    /// `Err`: the move wins immediately (no consistent defender reply);
    /// the string is the rendered experiment. `Ok`: successor pairs to
    /// recurse into, one per defender reply, each `(left', right',
    /// hedge')`.
    replies: Result<Vec<(Process, Process, Hedge)>, String>,
    /// Whether the defender's `τ`-closure was truncated — if so, the
    /// move can never soundly conclude `Distinguished`.
    defender_complete: bool,
}

type Closure = Rc<(Vec<(Process, Vec<Commitment>)>, bool)>;

struct Game {
    cfg: EquivConfig,
    plays: usize,
    /// Budgets hit anywhere in the search ("tau", "injections").
    exhausted: BTreeSet<&'static str>,
    /// Whether the current deepening round hit its depth cutoff with
    /// visible moves still available.
    depth_cutoff: bool,
    /// Round-local memo: normalised state key → settled outcome.
    memo: HashMap<u128, MemoEntry>,
    /// `τ`-closures by `alpha_hash`, shared across rounds.
    closures: HashMap<u64, Closure>,
}

#[derive(Clone)]
enum MemoEntry {
    /// On the current stack: assume no distinction (coinduction).
    InProgress,
    NoDistinction,
    Distinguished(Vec<String>),
}

impl Game {
    fn closure(&mut self, p: &Process) -> Closure {
        let h = nuspi_syntax::alpha_hash(p);
        if let Some(c) = self.closures.get(&h) {
            return Rc::clone(c);
        }
        let mut states = Vec::new();
        let stats = tau_closure(p, &self.cfg.exec(), &mut states);
        let c: Closure = Rc::new((states, stats.truncated));
        self.closures.insert(h, Rc::clone(&c));
        c
    }

    fn play(&mut self, left: &Process, right: &Process, hedge: &Hedge, fuel: usize) -> Outcome {
        if self.plays >= self.cfg.max_plays {
            return Outcome::NoDistinction;
        }
        self.plays += 1;
        let key = state_key(left, right, hedge);
        match self.memo.get(&key) {
            Some(MemoEntry::InProgress) | Some(MemoEntry::NoDistinction) => {
                return Outcome::NoDistinction
            }
            Some(MemoEntry::Distinguished(t)) => return Outcome::Distinguished(t.clone()),
            None => {}
        }
        self.memo.insert(key, MemoEntry::InProgress);

        let lc = self.closure(left);
        let rc = self.closure(right);
        if lc.1 || rc.1 {
            self.exhausted.insert("tau");
        }
        let moves = self.moves(&lc, &rc, hedge);
        let outcome = if fuel == 0 {
            if !moves.is_empty() {
                self.depth_cutoff = true;
            }
            Outcome::NoDistinction
        } else {
            self.evaluate(moves, fuel)
        };
        let entry = match &outcome {
            Outcome::Distinguished(t) => MemoEntry::Distinguished(t.clone()),
            Outcome::NoDistinction => MemoEntry::NoDistinction,
        };
        self.memo.insert(key, entry);
        outcome
    }

    /// Evaluates the moves: immediate wins first (a move whose every
    /// defender reply is already hedge-inconsistent), then recursion.
    /// This ordering finds shallow experiments before burning the play
    /// budget on deep consistent branches.
    fn evaluate(&mut self, moves: Vec<Move>, fuel: usize) -> Outcome {
        for m in &moves {
            if let Err(experiment) = &m.replies {
                if m.defender_complete {
                    return Outcome::Distinguished(vec![m.step.clone(), experiment.clone()]);
                }
                self.exhausted.insert("tau");
            }
        }
        for m in moves {
            let Ok(replies) = m.replies else { continue };
            let mut all_refuted = true;
            let mut first_failure: Option<Vec<String>> = None;
            for (l2, r2, h2) in replies {
                match self.play(&l2, &r2, &h2, fuel - 1) {
                    Outcome::NoDistinction => {
                        all_refuted = false;
                        break;
                    }
                    Outcome::Distinguished(t) => {
                        if first_failure.is_none() {
                            first_failure = Some(t);
                        }
                    }
                }
            }
            if all_refuted {
                if let Some(tail) = first_failure {
                    if m.defender_complete {
                        let mut trace = vec![m.step];
                        trace.extend(tail);
                        return Outcome::Distinguished(trace);
                    }
                    self.exhausted.insert("tau");
                }
                // `first_failure == None` means the defender had no
                // replies at all — already handled as an immediate win
                // (or a truncation) in the first pass.
            }
        }
        Outcome::NoDistinction
    }

    /// Enumerates the attacker's moves: outputs (passive observation)
    /// before inputs (active injection), each side in turn, closure
    /// states in BFS order — all deterministic.
    fn moves(&mut self, lc: &Closure, rc: &Closure, hedge: &Hedge) -> Vec<Move> {
        let mut out = Vec::new();
        for side in [Side::Lhs, Side::Rhs] {
            let (att, def) = match side {
                Side::Lhs => (lc, rc),
                Side::Rhs => (rc, lc),
            };
            for (_, cs) in &att.0 {
                for c in cs {
                    if let (Action::Out(ch), Agent::Conc(conc)) = (&c.action, &c.agent) {
                        if let Some(co) = self.co_channel(hedge, side, *ch) {
                            out.push(self.out_move(side, *ch, co, conc, def, hedge));
                        }
                    }
                }
            }
        }
        for side in [Side::Lhs, Side::Rhs] {
            let (att, def) = match side {
                Side::Lhs => (lc, rc),
                Side::Rhs => (rc, lc),
            };
            for (_, cs) in &att.0 {
                for c in cs {
                    if let (Action::In(ch), Agent::Abs(abs)) = (&c.action, &c.agent) {
                        if let Some(co) = self.co_channel(hedge, side, *ch) {
                            for (inj_own, inj_def) in self.injections(hedge, side) {
                                let cont = receive(&abs.restricted, abs.var, &abs.body, &inj_own);
                                out.push(in_move(
                                    side, *ch, co, &inj_own, &inj_def, cont, def, hedge,
                                ));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn co_channel(
        &self,
        hedge: &Hedge,
        side: Side,
        ch: nuspi_syntax::Name,
    ) -> Option<nuspi_syntax::Name> {
        match side {
            Side::Lhs => hedge.co_channel_left(ch),
            Side::Rhs => hedge.co_channel_right(ch),
        }
    }

    /// An output observation: the attacker reads `conc` on `ch`; the
    /// defender must emit on `co` with a correspondingly consistent value.
    fn out_move(
        &mut self,
        side: Side,
        ch: nuspi_syntax::Name,
        co: nuspi_syntax::Name,
        conc: &nuspi_semantics::Concretion,
        def: &Closure,
        hedge: &Hedge,
    ) -> Move {
        let step = format!(
            "{} emits {} on {}",
            side.name(),
            conc.value.canonicalize(),
            ch.canonical().as_str()
        );
        let mut replies = Vec::new();
        let mut experiment = None;
        for (_, cs) in &def.0 {
            for c in cs {
                let (Action::Out(dch), Agent::Conc(dconc)) = (&c.action, &c.agent) else {
                    continue;
                };
                if *dch != co {
                    continue;
                }
                let (lv, rv, lp, rp) = match side {
                    Side::Lhs => (&conc.value, &dconc.value, &conc.body, &dconc.body),
                    Side::Rhs => (&dconc.value, &conc.value, &dconc.body, &conc.body),
                };
                match hedge.learn(lv.clone(), rv.clone()) {
                    Ok(h2) => replies.push((lp.clone(), rp.clone(), h2)),
                    Err(e) => {
                        if experiment.is_none() {
                            experiment = Some(format!(
                                "{} replies {} on {}: {}",
                                side.other(),
                                dconc.value.canonicalize(),
                                co.canonical().as_str(),
                                e
                            ));
                        }
                    }
                }
            }
        }
        let defender_complete = !def.1;
        let replies = if replies.is_empty() {
            Err(experiment.unwrap_or_else(|| {
                format!(
                    "no corresponding output on {} from {}",
                    co.canonical().as_str(),
                    side.other()
                )
            }))
        } else {
            Ok(replies)
        };
        Move {
            step,
            replies,
            defender_complete,
        }
    }

    /// The message pairs the attacker can inject: `(0, 0)`, then whole
    /// observed messages (replays — the protocol attacker's key move:
    /// reflection, re-forwarding a starved message), then every
    /// irreducible hedge pair, capped by the injection budget.
    fn injections(&mut self, hedge: &Hedge, side: Side) -> Vec<(Rc<Value>, Rc<Value>)> {
        let mut out = vec![(Value::zero(), Value::zero())];
        let candidates = hedge.replays().iter().chain(hedge.pairs());
        for (l, r) in candidates {
            let oriented = match side {
                Side::Lhs => (l.clone(), r.clone()),
                Side::Rhs => (r.clone(), l.clone()),
            };
            if out.contains(&oriented) {
                continue;
            }
            if out.len() >= self.cfg.max_injections {
                self.exhausted.insert("injections");
                break;
            }
            out.push(oriented);
        }
        out
    }
}

/// The continuation of an input: re-wrap the abstraction's extruded
/// restrictions around the instantiated body.
fn receive(
    restricted: &[nuspi_syntax::Name],
    var: nuspi_syntax::Var,
    body: &Process,
    value: &Rc<Value>,
) -> Process {
    builder::restrict_all(restricted.iter().copied(), body.subst(var, value))
}

#[allow(clippy::too_many_arguments)]
fn in_move(
    side: Side,
    ch: nuspi_syntax::Name,
    co: nuspi_syntax::Name,
    inj_own: &Rc<Value>,
    inj_def: &Rc<Value>,
    cont: Process,
    def: &Closure,
    _hedge: &Hedge,
) -> Move {
    let step = format!(
        "inject {} / {} on {}",
        inj_own.canonicalize(),
        inj_def.canonicalize(),
        ch.canonical().as_str()
    );
    let mut replies = Vec::new();
    for (_, cs) in &def.0 {
        for c in cs {
            let (Action::In(dch), Agent::Abs(dabs)) = (&c.action, &c.agent) else {
                continue;
            };
            if *dch != co {
                continue;
            }
            let dcont = receive(&dabs.restricted, dabs.var, &dabs.body, inj_def);
            let (lp, rp) = match side {
                Side::Lhs => (cont.clone(), dcont),
                Side::Rhs => (dcont, cont.clone()),
            };
            replies.push((lp, rp, _hedge.clone()));
        }
    }
    let defender_complete = !def.1;
    let replies = if replies.is_empty() {
        Err(format!(
            "no corresponding input on {} from {}",
            co.canonical().as_str(),
            side.other()
        ))
    } else {
        Ok(replies)
    };
    Move {
        step,
        replies,
        defender_complete,
    }
}

/// The memo key: exact renderings of both processes and the hedge, with
/// fresh-name indices jointly renumbered in first-occurrence order — so
/// the key is independent of the global freshening counter and identical
/// across runs, worker counts, and cache temperatures.
fn state_key(left: &Process, right: &Process, hedge: &Hedge) -> u128 {
    let joint = format!("{left}\u{0}{right}\u{0}{}", hedge.render_exact());
    let mut h = StableHasher128::new();
    h.write(normalise_indices(&joint).as_bytes());
    h.finish128().0
}

/// Rewrites every `#<digits>` fresh-name index to a small sequential id
/// in order of first occurrence.
fn normalise_indices(s: &str) -> String {
    let mut map: HashMap<&str, usize> = HashMap::new();
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('#') {
        out.push_str(&rest[..pos]);
        let after = &rest[pos + 1..];
        let digits = after.len() - after.trim_start_matches(|c: char| c.is_ascii_digit()).len();
        if digits == 0 {
            out.push('#');
            rest = after;
            continue;
        }
        let next = map.len() + 1;
        let id = *map.entry(&after[..digits]).or_insert(next);
        out.push('#');
        out.push_str(&id.to_string());
        rest = &after[digits..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::parse_process;

    fn syms(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| Symbol::intern(n)).collect()
    }

    fn run(l: &str, r: &str, public: &[&str]) -> EquivReport {
        let lp = parse_process(l).unwrap();
        let rp = parse_process(r).unwrap();
        check(&lp, &rp, &syms(public), &EquivConfig::default())
    }

    #[test]
    fn digest_fast_path() {
        let rep = run("c<0>.0", "c<0>.0", &["c"]);
        assert_eq!(rep.verdict, Verdict::Bisimilar);
        assert_eq!(rep.plays, 0);
    }

    #[test]
    fn commuted_parallel_is_bisimilar_exactly() {
        let rep = run("a<0>.0 | b<0>.0", "b<0>.0 | a<0>.0", &["a", "b"]);
        assert_eq!(rep.verdict, Verdict::Bisimilar, "{rep:?}");
        assert!(rep.plays > 0, "not the digest fast path");
    }

    #[test]
    fn distinct_clear_payloads_are_distinguished() {
        let rep = run("c<a>.0", "c<b>.0", &["c", "a", "b"]);
        let Verdict::Distinguished { trace } = &rep.verdict else {
            panic!("{rep:?}");
        };
        assert!(trace[0].contains("emits"), "{trace:?}");
        assert!(trace.last().unwrap().contains("injectivity"), "{trace:?}");
    }

    #[test]
    fn missing_output_is_distinguished() {
        let rep = run("c<0>.0", "0", &["c"]);
        let Verdict::Distinguished { trace } = &rep.verdict else {
            panic!("{rep:?}");
        };
        assert!(trace.iter().any(|s| s.contains("no corresponding output")));
    }

    #[test]
    fn restricted_fresh_names_are_indistinguishable() {
        // Both emit a fresh restricted name: the attacker learns a pair
        // of distinct-looking names, which is perfectly consistent.
        let rep = run("(new n) c<n>.0", "(new m2) c<m2>.0", &["c"]);
        assert_eq!(rep.verdict, Verdict::Bisimilar, "{rep:?}");
    }

    #[test]
    fn hide_blocks_extrusion_and_distinguishes_from_new() {
        let rep = run("(new n) c<n>.0", "(hide n) c<n>.0", &["c"]);
        let Verdict::Distinguished { trace } = &rep.verdict else {
            panic!("{rep:?}");
        };
        assert!(
            trace.iter().any(|s| s.contains("no corresponding output")),
            "{trace:?}"
        );
    }

    #[test]
    fn opaque_ciphertexts_hide_their_payload() {
        let rep = run(
            "(new k) c<{a, new r}:k>.0",
            "(new k) c<{b, new r}:k>.0",
            &["c", "a", "b"],
        );
        assert_eq!(rep.verdict, Verdict::Bisimilar, "{rep:?}");
    }

    #[test]
    fn known_key_ciphertexts_expose_their_payload() {
        let rep = run(
            "c<{a, new r}:k>.0",
            "c<{b, new r}:k>.0",
            &["c", "a", "b", "k"],
        );
        assert!(
            matches!(rep.verdict, Verdict::Distinguished { .. }),
            "{rep:?}"
        );
    }

    #[test]
    fn input_guard_on_injected_value_distinguishes() {
        // Left answers only to `a`, right only to `b`; injecting the
        // corresponding pair (a, a) makes them diverge.
        let rep = run(
            "c(x). [x is a] d<0>.0",
            "c(x). [x is b] d<0>.0",
            &["a", "b", "c", "d"],
        );
        let Verdict::Distinguished { trace } = &rep.verdict else {
            panic!("{rep:?}");
        };
        assert!(trace[0].starts_with("inject"), "{trace:?}");
    }

    #[test]
    fn secret_channels_are_unobservable() {
        // The channel is not in the hedge: neither output is observable,
        // so the processes are equivalent to the attacker.
        let rep = run("s<a>.0", "s<b>.0", &["a", "b"]);
        assert_eq!(rep.verdict, Verdict::Bisimilar, "{rep:?}");
    }

    #[test]
    fn reports_and_meters_are_deterministic() {
        let a = run(
            "c(x). [x is a] d<0>.0",
            "c(x). [x is b] d<0>.0",
            &["a", "b", "c", "d"],
        );
        let b = run(
            "c(x). [x is a] d<0>.0",
            "c(x). [x is b] d<0>.0",
            &["a", "b", "c", "d"],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_reports_the_exhausted_budget() {
        let tight = EquivConfig {
            max_plays: 2,
            ..EquivConfig::default()
        };
        let lp = parse_process("c(x). c(y). [x is y] d<0>.0").unwrap();
        let rp = parse_process("c(x). c(y). d<0>.0").unwrap();
        let rep = check(&lp, &rp, &syms(&["c", "d"]), &tight);
        let Verdict::Unknown { budgets } = &rep.verdict else {
            panic!("{rep:?}");
        };
        assert!(budgets.contains(&"plays".to_owned()), "{budgets:?}");
    }

    #[test]
    fn index_normalisation_is_first_occurrence_stable() {
        assert_eq!(normalise_indices("a#17 b#4 a#17"), "a#1 b#2 a#1");
        assert_eq!(normalise_indices("τ#9 — plain"), "τ#1 — plain");
        assert_eq!(normalise_indices("no indices"), "no indices");
    }
}
