//! The dynamic Theorem 5 oracle: message independence as a game.
//!
//! Theorem 5 justifies the static invariance verdict by *message
//! independence*: `P[M/x] ∼ P[M′/x]` for all closed messages, where `∼`
//! is public testing equivalence. The oracle instantiates the open
//! process with two **fresh attacker-known names** and plays the bounded
//! hedged-bisimulation game between the two instantiations.
//!
//! Fresh names — not numerals — are the right probes: a numeral can be
//! synthesised by any attacker, so instantiating a key-position secret
//! with `0` would let the attacker decrypt on *both* sides and fabricate
//! distinctions Theorem 5 never quantifies over. A fresh name the
//! attacker happens to know (it is seeded into the initial hedge, paired
//! with itself on both sides) is exactly an attacker-chosen message: it
//! can be compared and used as a key by the attacker, but never
//! synthesised by the processes themselves.
//!
//! Because both sides are the *same* process up to the probe
//! substitution, every `Distinguished` verdict is driven by how the
//! secret's value flows — a leak in the clear, a secret used as a key or
//! tested by a guard — which is precisely the soundness direction the
//! differential wall checks against `static_message_independence`.

use crate::bisim::{check, EquivConfig, EquivReport};
use nuspi_syntax::{Name, Process, Symbol, Value, Var};

/// The probe names chosen for one oracle run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Probes {
    /// The name substituted on the left.
    pub left: Symbol,
    /// The name substituted on the right.
    pub right: Symbol,
}

/// Picks two probe names not free in `open` and not in `public`,
/// deterministically: `g1`/`g2`, suffixing `x` until fresh.
pub fn pick_probes(open: &Process, public: &[Symbol]) -> Probes {
    let taken: std::collections::BTreeSet<String> = open
        .free_names()
        .into_iter()
        .map(|n| n.canonical().as_str().to_owned())
        .chain(public.iter().map(|s| s.as_str().to_owned()))
        .collect();
    let fresh = |base: &str| {
        let mut cand = base.to_owned();
        while taken.contains(&cand) {
            cand.push('x');
        }
        Symbol::intern(&cand)
    };
    Probes {
        left: fresh("g1"),
        right: fresh("g2"),
    }
}

/// Runs the message-independence game for `P(x) = open` with `x` bound:
/// checks `P[g1/x] ∼ P[g2/x]` for fresh attacker-known probes `g1, g2`,
/// with every name in `public` (plus both probes) seeded into the hedge.
pub fn independence_oracle(
    open: &Process,
    x: Var,
    public: &[Symbol],
    cfg: &EquivConfig,
) -> EquivReport {
    let _span = nuspi_obs::span!("equiv.oracle");
    let probes = pick_probes(open, public);
    let left = open.subst(x, &Value::name(Name::global(probes.left.as_str())));
    let right = open.subst(x, &Value::name(Name::global(probes.right.as_str())));
    let mut known: Vec<Symbol> = public.to_vec();
    known.push(probes.left);
    known.push(probes.right);
    check(&left, &right, &known, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim::Verdict;
    use nuspi_syntax::{builder as b, parse_process};

    fn syms(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| Symbol::intern(n)).collect()
    }

    /// `P(x)` from source: parse `probe(x). body` and strip the input.
    fn open(src: &str) -> (Process, Var) {
        let p = parse_process(&format!("probe(x). {src}")).unwrap();
        let Process::Input { var, then, .. } = p else {
            panic!()
        };
        (*then, var)
    }

    #[test]
    fn probes_avoid_free_names() {
        let p = parse_process("g1<g2x>.0").unwrap();
        let probes = pick_probes(&p, &syms(&["g2"]));
        assert_eq!(probes.left.as_str(), "g1x");
        assert_eq!(probes.right.as_str(), "g2xx");
    }

    #[test]
    fn clear_leak_is_dependent() {
        let (p, x) = open("c<x>.0");
        let rep = independence_oracle(&p, x, &syms(&["c"]), &EquivConfig::default());
        assert!(
            matches!(rep.verdict, Verdict::Distinguished { .. }),
            "{rep:?}"
        );
    }

    #[test]
    fn sealed_payload_is_independent() {
        // `(new k) c<{x, new r}:k>.0`: the probe only ever travels under
        // a restricted key.
        let (p, x) = open("(new k) c<{x, new r}:k>.0");
        let rep = independence_oracle(&p, x, &syms(&["c"]), &EquivConfig::default());
        assert_eq!(rep.verdict, Verdict::Bisimilar, "{rep:?}");
    }

    #[test]
    fn secret_as_key_is_dependent() {
        // The attacker knows the probes, so it can decrypt exactly one
        // side's ciphertext with the corresponding recipe.
        let (p, x) = open("c<{m, new r}:x>.0");
        let rep = independence_oracle(&p, x, &syms(&["c", "m"]), &EquivConfig::default());
        assert!(
            matches!(rep.verdict, Verdict::Distinguished { .. }),
            "{rep:?}"
        );
    }

    #[test]
    fn guard_on_secret_is_dependent() {
        // `[x is g1]` fires on the left instantiation only once the
        // attacker mentions g1 — but here the guard compares against a
        // value the process received, which the attacker injects.
        let (p, x) = open("c(y). [y is x] d<0>.0");
        let rep = independence_oracle(&p, x, &syms(&["c", "d"]), &EquivConfig::default());
        assert!(
            matches!(rep.verdict, Verdict::Distinguished { .. }),
            "{rep:?}"
        );
    }

    #[test]
    fn builder_built_open_processes_work() {
        let x = Var::fresh("x");
        let k = nuspi_syntax::Name::global("k");
        let p = b::restrict(
            k,
            b::output(
                b::name("c"),
                b::enc(vec![b::var(x)], Name::global("r"), b::name_expr(k)),
                b::nil(),
            ),
        );
        let rep = independence_oracle(&p, x, &syms(&["c"]), &EquivConfig::default());
        assert_eq!(rep.verdict, Verdict::Bisimilar, "{rep:?}");
    }
}
