//! The attack-variant miner: syntactic perturbations of protocol specs.
//!
//! [`mutations`] enumerates small, protocol-shaped edits of a process —
//! the classic implementation mistakes: swapping two message fields,
//! dropping a field, replaying a send, or shipping an encrypted payload
//! in the clear. Running the [`independence_oracle`] over each mutant
//! and comparing with the unmutated process reports which edits break
//! observational equivalence — rediscovering, for the protocol zoo's
//! honest specs, exactly the committed broken variants.
//!
//! Mutants are plain [`Process`] values built with fresh labels, so they
//! flow through every existing backend: the static pipeline, the engine
//! (render with `Display` and resubmit as source), and the game.
//!
//! [`independence_oracle`]: crate::oracle::independence_oracle

use nuspi_syntax::{builder, Expr, Process, Term};

/// One mutant: the edit's description and the mutated process.
#[derive(Clone, Debug)]
pub struct Mutation {
    /// What was edited, e.g. `"swap fields of {…}:k at output #2 on cAB"`.
    pub label: String,
    /// The kind tag: `"swap"`, `"drop"`, `"replay"`, or `"expose"`.
    pub kind: &'static str,
    /// The mutated process.
    pub process: Process,
}

/// Enumerates every single-edit mutant of `p`, in deterministic
/// pre-order: for each output prefix, a replay plus every applicable
/// swap/drop/expose of its message.
pub fn mutations(p: &Process) -> Vec<Mutation> {
    let sites = count_outputs(p);
    let mut out = Vec::new();
    for site in 0..sites {
        for (kind, edit) in edits() {
            let mut idx = 0;
            let mut applied = None;
            let q = rewrite_output(p, site, &mut idx, &mut |chan, msg, then| {
                let (desc, replacement) = edit(chan, msg, then)?;
                applied = Some(desc);
                Some(replacement)
            });
            if let Some(desc) = applied {
                out.push(Mutation {
                    label: format!("{desc} at output #{site}"),
                    kind,
                    process: q,
                });
            }
        }
    }
    out
}

type Edit = fn(&Expr, &Expr, &Process) -> Option<(String, Process)>;

fn edits() -> [(&'static str, Edit); 4] {
    [
        ("swap", swap_fields),
        ("drop", drop_field),
        ("replay", replay_send),
        ("expose", expose_payload),
    ]
}

fn output(chan: &Expr, msg: Expr, then: Process) -> Process {
    builder::output(chan.clone(), msg, then)
}

/// Swap the first two fields of a pair or encrypted message.
fn swap_fields(chan: &Expr, msg: &Expr, then: &Process) -> Option<(String, Process)> {
    let swapped = match &msg.term {
        Term::Pair(a, b) => builder::pair((**b).clone(), (**a).clone()),
        Term::Enc {
            payload,
            confounder,
            key,
        } if payload.len() >= 2 => {
            let mut fields = payload.clone();
            fields.swap(0, 1);
            builder::enc(fields, *confounder, (**key).clone())
        }
        _ => return None,
    };
    Some((
        format!("swap fields of {msg} on {chan}"),
        output(chan, swapped, then.clone()),
    ))
}

/// Drop the first field of a pair or encrypted message.
fn drop_field(chan: &Expr, msg: &Expr, then: &Process) -> Option<(String, Process)> {
    let dropped = match &msg.term {
        Term::Pair(_, b) => (**b).clone(),
        Term::Enc {
            payload,
            confounder,
            key,
        } if payload.len() >= 2 => {
            builder::enc(payload[1..].to_vec(), *confounder, (**key).clone())
        }
        _ => return None,
    };
    Some((
        format!("drop first field of {msg} on {chan}"),
        output(chan, dropped, then.clone()),
    ))
}

/// Send the message twice (a replay; under νSPI the confounder is
/// re-randomised, as a replaying implementation would re-encrypt).
fn replay_send(chan: &Expr, msg: &Expr, then: &Process) -> Option<(String, Process)> {
    Some((
        format!("replay {msg} on {chan}"),
        output(chan, msg.clone(), output(chan, msg.clone(), then.clone())),
    ))
}

/// Ship an encrypted payload in the clear (tuple of the fields).
fn expose_payload(chan: &Expr, msg: &Expr, then: &Process) -> Option<(String, Process)> {
    let Term::Enc { payload, .. } = &msg.term else {
        return None;
    };
    let mut fields = payload.iter().rev().cloned();
    let mut clear = fields.next()?;
    for f in fields {
        clear = builder::pair(f, clear);
    }
    Some((
        format!("send payload of {msg} in the clear on {chan}"),
        output(chan, clear, then.clone()),
    ))
}

fn count_outputs(p: &Process) -> usize {
    match p {
        Process::Nil => 0,
        Process::Output { then, .. } => 1 + count_outputs(then),
        Process::Input { then, .. } => count_outputs(then),
        Process::Par(a, b) => count_outputs(a) + count_outputs(b),
        Process::Restrict { body, .. } | Process::Hide { body, .. } => count_outputs(body),
        Process::Match { then, .. } | Process::Let { then, .. } => count_outputs(then),
        Process::Replicate(q) => count_outputs(q),
        Process::CaseNat { zero, succ, .. } => count_outputs(zero) + count_outputs(succ),
        Process::CaseDec { then, .. } => count_outputs(then),
    }
}

/// Rebuilds `p` with the `target`-th output prefix (pre-order) rewritten
/// by `f`; other nodes are cloned structurally.
fn rewrite_output(
    p: &Process,
    target: usize,
    idx: &mut usize,
    f: &mut impl FnMut(&Expr, &Expr, &Process) -> Option<Process>,
) -> Process {
    match p {
        Process::Nil => Process::Nil,
        Process::Output { chan, msg, then } => {
            let here = *idx;
            *idx += 1;
            if here == target {
                if let Some(q) = f(chan, msg, then) {
                    return q;
                }
            }
            Process::Output {
                chan: chan.clone(),
                msg: msg.clone(),
                then: Box::new(rewrite_output(then, target, idx, f)),
            }
        }
        Process::Input { chan, var, then } => Process::Input {
            chan: chan.clone(),
            var: *var,
            then: Box::new(rewrite_output(then, target, idx, f)),
        },
        Process::Par(a, b) => Process::Par(
            Box::new(rewrite_output(a, target, idx, f)),
            Box::new(rewrite_output(b, target, idx, f)),
        ),
        Process::Restrict { name, body } => Process::Restrict {
            name: *name,
            body: Box::new(rewrite_output(body, target, idx, f)),
        },
        Process::Hide { name, body } => Process::Hide {
            name: *name,
            body: Box::new(rewrite_output(body, target, idx, f)),
        },
        Process::Match { lhs, rhs, then } => Process::Match {
            lhs: lhs.clone(),
            rhs: rhs.clone(),
            then: Box::new(rewrite_output(then, target, idx, f)),
        },
        Process::Replicate(q) => Process::Replicate(Box::new(rewrite_output(q, target, idx, f))),
        Process::Let {
            fst,
            snd,
            expr,
            then,
        } => Process::Let {
            fst: *fst,
            snd: *snd,
            expr: expr.clone(),
            then: Box::new(rewrite_output(then, target, idx, f)),
        },
        Process::CaseNat {
            expr,
            zero,
            pred,
            succ,
        } => Process::CaseNat {
            expr: expr.clone(),
            zero: Box::new(rewrite_output(zero, target, idx, f)),
            pred: *pred,
            succ: Box::new(rewrite_output(succ, target, idx, f)),
        },
        Process::CaseDec {
            expr,
            vars,
            key,
            then,
        } => Process::CaseDec {
            expr: expr.clone(),
            vars: vars.clone(),
            key: key.clone(),
            then: Box::new(rewrite_output(then, target, idx, f)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::{alpha_equivalent, parse_process};

    #[test]
    fn enumerates_expected_kinds() {
        let p = parse_process("c<(a, b)>.0 | d<{m, n, new r}:k>.0").unwrap();
        let ms = mutations(&p);
        let kinds: Vec<&str> = ms.iter().map(|m| m.kind).collect();
        // Pair: swap, drop, replay, (no expose). Enc: all four.
        assert_eq!(
            kinds,
            ["swap", "drop", "replay", "swap", "drop", "replay", "expose"],
            "{ms:#?}"
        );
    }

    #[test]
    fn mutants_differ_and_print_as_source() {
        let p = parse_process("(new k) c<{m, new r}:k>.0").unwrap();
        for m in mutations(&p) {
            assert!(
                !alpha_equivalent(&p, &m.process),
                "mutant identical: {}",
                m.label
            );
            // Round-trip through the printer: mutants can be resubmitted
            // to the engine as source.
            let reparsed = parse_process(&m.process.to_string()).unwrap();
            assert!(alpha_equivalent(&m.process, &reparsed), "{}", m.label);
        }
    }

    #[test]
    fn expose_sends_fields_in_the_clear() {
        let p = parse_process("c<{m, n, new r}:k>.0").unwrap();
        let ms = mutations(&p);
        let exposed = ms.iter().find(|m| m.kind == "expose").unwrap();
        assert_eq!(exposed.process.to_string(), "c<(m, n)>.0");
    }

    #[test]
    fn replay_duplicates_the_send() {
        let p = parse_process("c<m>.d<n>.0").unwrap();
        let ms = mutations(&p);
        let replays: Vec<&Mutation> = ms.iter().filter(|m| m.kind == "replay").collect();
        assert_eq!(replays.len(), 2);
        assert_eq!(replays[0].process.to_string(), "c<m>.c<m>.d<n>.0");
    }
}
