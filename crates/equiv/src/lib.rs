//! # nuspi-equiv — bounded hedged bisimilarity, std-only
//!
//! A second, *dynamic* analysis backend beside the static CFA pipeline:
//! a bounded hedged-bisimulation checker over the commitment LTS of
//! `nuspi-semantics`, after Mansutti–Miculan's decision procedure for
//! spi-calculus equivalence (see PAPERS.md).
//!
//! * [`check`] plays the attacker game between two processes and returns
//!   [`Verdict::Bisimilar`], [`Verdict::Distinguished`] with a rendered
//!   attacker strategy, or [`Verdict::Unknown`] naming the exhausted
//!   budgets. The two definite verdicts are asymmetric in strength:
//!   `Distinguished` is always hard evidence (a complete defender
//!   enumeration backs every step of the trace), while `Bisimilar`
//!   means the play tree over the *finite injection base* was exhausted
//!   — equivalence relative to the budgeted attacker, not an unbounded
//!   proof. Safety claims in this repo therefore rest on the static
//!   analysis run differentially against this game, never on
//!   `Bisimilar` alone (DESIGN.md §11).
//! * [`Hedge`] is the paired-knowledge game state, closed under the
//!   Dolev–Yao analysis rewriting and checked for consistency
//!   (shape classes, injectivity, corresponding decryptability).
//! * [`independence_oracle`] is the dynamic side of the paper's
//!   Theorem 5: message independence of `P(x)` as a game between two
//!   fresh-name instantiations, run differentially against
//!   `static_message_independence` by the repo's test walls.
//! * [`mutations`] mines attack variants: protocol-shaped edits (swap /
//!   drop / replay / expose a message field) whose oracle verdicts
//!   report which mistakes break equivalence.
//!
//! Everything here is deterministic by construction — verdicts, traces,
//! and play counts are bit-identical across runs, worker counts, and
//! cache temperatures — which is what lets the engine cache `equiv`
//! bodies under an order-independent pair of α-invariant digests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bisim;
mod hedge;
mod mutate;
mod oracle;

pub use bisim::{check, check_with_hedge, EquivConfig, EquivReport, Verdict};
pub use hedge::{Hedge, Inconsistency};
pub use mutate::{mutations, Mutation};
pub use oracle::{independence_oracle, pick_probes, Probes};
