//! Hedges: the knowledge-pair state of the hedged bisimulation game.
//!
//! A *hedge* (Borgström–Nestmann, as used by Mansutti–Miculan's decision
//! procedure) is a finite set of value pairs `(v, w)`: "the attacker
//! obtained `v` from the left process exactly where it obtained `w` from
//! the right one". The hedge is kept *irreducible* under the analysis
//! rewriting — pairs are split, successors peeled, and ciphertexts opened
//! as soon as their keys become correspondingly derivable — so the stored
//! pairs are exactly the leaves an attacker recipe can mention.
//!
//! [`Hedge::learn`] extends a hedge with one observed pair and re-closes
//! it, reporting an [`Inconsistency`] when the attacker could tell the
//! two sides apart: a shape-class mismatch, an injectivity violation
//! (equality tests differ), a one-sided decryption, or a decryption whose
//! corresponding key comes out wrong. Every inconsistency is a concrete
//! experiment, so `Distinguished` verdicts built on them are sound.
//!
//! Derivability of keys reuses the Dolev–Yao analysis closure
//! ([`Knowledge`]): each hedge carries the saturated left and right
//! projections of everything learned, and a ciphertext opens exactly when
//! *both* projections derive their key (a one-sided derivation is itself
//! an experiment). Recipe *correspondence* — "the recipe producing the
//! left key produces what on the right?" — is computed structurally over
//! the irreducible pairs by [`Hedge::correspond_left`].

use nuspi_security::Knowledge;
use nuspi_syntax::{Name, Symbol, Value};
use std::fmt;
use std::rc::Rc;

/// An experiment the attacker can run to tell the two sides apart.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Inconsistency {
    /// The two values have different outermost shapes (name vs pair vs
    /// numeral vs ciphertext) — splitting, `case`, or use as a channel
    /// behaves differently.
    ShapeMismatch(Rc<Value>, Rc<Value>),
    /// Two corresponding pairs violate injectivity: an equality test
    /// (`[v is w]`) succeeds on one side and fails on the other.
    Injectivity {
        /// The clashing pairs, rendered canonically.
        first: (String, String),
        /// The second pair of the clash.
        second: (String, String),
    },
    /// Exactly one side can derive its decryption key.
    OneSidedDecryption {
        /// Which side decrypts (`"lhs"` or `"rhs"`).
        side: &'static str,
        /// The ciphertext pair, rendered canonically.
        pair: (String, String),
    },
    /// Both sides derive their key, but the recipe that produces the left
    /// key produces something other than the right key.
    KeyMismatch {
        /// The left key, rendered canonically.
        left_key: String,
        /// What the same recipe yields on the right, rendered canonically.
        corresponding: String,
        /// The actual right key, rendered canonically.
        right_key: String,
    },
    /// Corresponding ciphertexts decrypt to payloads of different arity.
    ArityMismatch(usize, usize),
}

fn canon(v: &Value) -> String {
    v.canonicalize().to_string()
}

impl fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inconsistency::ShapeMismatch(l, r) => {
                write!(f, "shape mismatch: {} vs {}", canon(l), canon(r))
            }
            Inconsistency::Injectivity { first, second } => write!(
                f,
                "injectivity violated: ({}, {}) clashes with ({}, {})",
                first.0, first.1, second.0, second.1
            ),
            Inconsistency::OneSidedDecryption { side, pair } => write!(
                f,
                "only {side} can decrypt the corresponding pair ({}, {})",
                pair.0, pair.1
            ),
            Inconsistency::KeyMismatch {
                left_key,
                corresponding,
                right_key,
            } => write!(
                f,
                "key recipe mismatch: {left_key} corresponds to {corresponding}, \
                 but the right key is {right_key}"
            ),
            Inconsistency::ArityMismatch(l, r) => {
                write!(f, "decrypted arity mismatch: {l} vs {r} fields")
            }
        }
    }
}

/// The attacker's paired knowledge: an irreducible set of corresponding
/// value pairs plus the saturated Dolev–Yao projections of each side.
#[derive(Clone, Debug)]
pub struct Hedge {
    /// Irreducible pairs in first-learned order (deterministic: learning
    /// order is a function of the game's move enumeration).
    pairs: Vec<(Rc<Value>, Rc<Value>)>,
    /// Exact observed values *before* decomposition, in learning order —
    /// the replay candidates. Saturation splits a composite message into
    /// its irreducible leaves, but a protocol attacker's bread-and-butter
    /// move is re-injecting a whole observed message (reflection, ticket
    /// replay); keeping the pre-decomposition pair makes that a first-
    /// class injection candidate.
    learned: Vec<(Rc<Value>, Rc<Value>)>,
    /// Saturated left projection (for key derivability).
    left: Knowledge,
    /// Saturated right projection.
    right: Knowledge,
}

impl Default for Hedge {
    fn default() -> Hedge {
        Hedge::new()
    }
}

impl Hedge {
    /// The empty hedge (the attacker knows only `0`).
    pub fn new() -> Hedge {
        Hedge {
            pairs: Vec::new(),
            learned: Vec::new(),
            left: Knowledge::from_names(Vec::<Symbol>::new()),
            right: Knowledge::from_names(Vec::<Symbol>::new()),
        }
    }

    /// A hedge seeding each public name as corresponding to itself —
    /// the standard initial state: free names are common knowledge.
    pub fn with_public_names(names: &[Symbol]) -> Hedge {
        let mut h = Hedge::new();
        for n in names {
            let v = Value::name(Name::global(n.as_str()));
            h.pairs.push((v.clone(), v.clone()));
            h.left.learn(v.clone());
            h.right.learn(v);
        }
        h
    }

    /// The irreducible pairs, in learning order.
    pub fn pairs(&self) -> &[(Rc<Value>, Rc<Value>)] {
        &self.pairs
    }

    /// The exact observed values before decomposition, in learning order
    /// — the replay candidates for message injection.
    pub fn replays(&self) -> &[(Rc<Value>, Rc<Value>)] {
        &self.learned
    }

    /// Extends the hedge with one observed pair and re-closes it under
    /// the analysis rewriting. Returns the extended hedge, or the
    /// experiment that distinguishes the two sides.
    pub fn learn(&self, l: Rc<Value>, r: Rc<Value>) -> Result<Hedge, Inconsistency> {
        let mut h = self.clone();
        h.left.learn(l.clone());
        h.right.learn(r.clone());
        if !matches!(l.as_ref(), Value::Name(_))
            && !h.learned.iter().any(|(a, b)| *a == l && *b == r)
        {
            h.learned.push((l.clone(), r.clone()));
        }
        h.saturate(vec![(l, r)])?;
        h.check_injectivity()?;
        Ok(h)
    }

    /// Decomposes `work` into irreducible pairs, opening ciphertexts
    /// whose keys both projections derive.
    fn saturate(&mut self, mut work: Vec<(Rc<Value>, Rc<Value>)>) -> Result<(), Inconsistency> {
        loop {
            while let Some((l, r)) = work.pop() {
                match (l.as_ref(), r.as_ref()) {
                    (Value::Zero, Value::Zero) => {}
                    (Value::Suc(a), Value::Suc(b)) => work.push((a.clone(), b.clone())),
                    (Value::Pair(a1, b1), Value::Pair(a2, b2)) => {
                        work.push((a1.clone(), a2.clone()));
                        work.push((b1.clone(), b2.clone()));
                    }
                    (Value::Name(_), Value::Name(_)) | (Value::Enc { .. }, Value::Enc { .. }) => {
                        if !self.pairs.iter().any(|(a, b)| *a == l && *b == r) {
                            self.pairs.push((l, r));
                        }
                    }
                    _ => return Err(Inconsistency::ShapeMismatch(l, r)),
                }
            }
            // Ciphertext pass: open every pair whose keys are now
            // correspondingly derivable. Restart the decomposition with
            // the payload pairs; reaching a fixpoint terminates the loop
            // (each opening strictly shrinks the total ciphertext size).
            let mut opened = None;
            for (i, (l, r)) in self.pairs.iter().enumerate() {
                let (
                    Value::Enc {
                        payload: pl,
                        key: kl,
                        ..
                    },
                    Value::Enc {
                        payload: pr,
                        key: kr,
                        ..
                    },
                ) = (l.as_ref(), r.as_ref())
                else {
                    continue;
                };
                let ldec = self.left.can_derive(kl);
                let rdec = self.right.can_derive(kr);
                match (ldec, rdec) {
                    (false, false) => {} // opaque on both sides
                    (true, false) | (false, true) => {
                        return Err(Inconsistency::OneSidedDecryption {
                            side: if ldec { "lhs" } else { "rhs" },
                            pair: (canon(l), canon(r)),
                        });
                    }
                    (true, true) => {
                        if let Some(corr) = self.correspond_left(kl) {
                            if corr != *kr {
                                return Err(Inconsistency::KeyMismatch {
                                    left_key: canon(kl),
                                    corresponding: canon(&corr),
                                    right_key: canon(kr),
                                });
                            }
                        }
                        if pl.len() != pr.len() {
                            return Err(Inconsistency::ArityMismatch(pl.len(), pr.len()));
                        }
                        opened = Some((i, pl.clone(), pr.clone()));
                        break;
                    }
                }
            }
            match opened {
                None => return Ok(()),
                Some((i, pl, pr)) => {
                    self.pairs.remove(i);
                    work.extend(pl.into_iter().zip(pr));
                }
            }
        }
    }

    /// Bidirectional injectivity over the irreducible pairs: equal lefts
    /// must pair with equal rights and vice versa, or `[v is w]` tests
    /// give different answers on the two sides.
    fn check_injectivity(&self) -> Result<(), Inconsistency> {
        for (i, (l1, r1)) in self.pairs.iter().enumerate() {
            for (l2, r2) in &self.pairs[i + 1..] {
                if (l1 == l2) != (r1 == r2) {
                    return Err(Inconsistency::Injectivity {
                        first: (canon(l1), canon(r1)),
                        second: (canon(l2), canon(r2)),
                    });
                }
            }
        }
        Ok(())
    }

    /// The right-side value produced by applying, to the right knowledge,
    /// the recipe that derives `target` from the left knowledge (`None`
    /// when no recipe exists over the irreducible leaves).
    pub fn correspond_left(&self, target: &Rc<Value>) -> Option<Rc<Value>> {
        self.correspond(target, true)
    }

    /// Mirror of [`Hedge::correspond_left`].
    pub fn correspond_right(&self, target: &Rc<Value>) -> Option<Rc<Value>> {
        self.correspond(target, false)
    }

    fn correspond(&self, target: &Rc<Value>, from_left: bool) -> Option<Rc<Value>> {
        let pick = |(l, r): &(Rc<Value>, Rc<Value>)| {
            if from_left {
                (l.clone(), r.clone())
            } else {
                (r.clone(), l.clone())
            }
        };
        if let Some(p) = self.pairs.iter().map(pick).find(|(own, _)| own == target) {
            return Some(p.1);
        }
        match target.as_ref() {
            Value::Zero => Some(Value::zero()),
            Value::Suc(a) => self.correspond(a, from_left).map(Value::suc),
            Value::Pair(a, b) => Some(Value::pair(
                self.correspond(a, from_left)?,
                self.correspond(b, from_left)?,
            )),
            // Synthesising a ciphertext needs the exact confounder, which
            // is a name: only derivable when extruded as a leaf.
            Value::Enc {
                payload,
                confounder,
                key,
            } => {
                let conf = self
                    .correspond(&Value::name(*confounder), from_left)?
                    .as_name()?;
                let key = self.correspond(key, from_left)?;
                let payload = payload
                    .iter()
                    .map(|w| self.correspond(w, from_left))
                    .collect::<Option<Vec<_>>>()?;
                Some(Value::enc(payload, conf, key))
            }
            Value::Name(_) => None, // names are never synthesised
        }
    }

    /// The right channel corresponding to a left channel name (the
    /// attacker can observe/inject on a channel only if it knows it).
    pub fn co_channel_left(&self, n: Name) -> Option<Name> {
        self.correspond_left(&Value::name(n))?.as_name()
    }

    /// Mirror of [`Hedge::co_channel_left`].
    pub fn co_channel_right(&self, n: Name) -> Option<Name> {
        self.correspond_right(&Value::name(n))?.as_name()
    }

    /// Renders the hedge with exact (indexed) names, for memoisation
    /// keys. The caller normalises fresh-name indices jointly with the
    /// process renderings.
    pub fn render_exact(&self) -> String {
        let mut s = String::new();
        for (l, r) in &self.pairs {
            s.push_str(&format!("{l}\u{1}{r}\u{2}"));
        }
        s.push('\u{3}');
        for (l, r) in &self.learned {
            s.push_str(&format!("{l}\u{1}{r}\u{2}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn n(s: &str) -> Rc<Value> {
        Value::name(Name::global(s))
    }

    #[test]
    fn public_names_correspond_to_themselves() {
        let h = Hedge::with_public_names(&[sym("c"), sym("d")]);
        assert_eq!(
            h.co_channel_left(Name::global("c")),
            Some(Name::global("c"))
        );
        assert_eq!(h.co_channel_left(Name::global("x")), None);
    }

    #[test]
    fn pairs_decompose_and_numerals_match_by_shape() {
        let h = Hedge::new();
        let h = h
            .learn(
                Value::pair(n("a"), Value::numeral(2)),
                Value::pair(n("b"), Value::numeral(2)),
            )
            .unwrap();
        assert_eq!(h.pairs().len(), 1, "only the name pair is irreducible");
        assert!(h
            .learn(Value::numeral(1), Value::zero())
            .is_err_and(|e| matches!(e, Inconsistency::ShapeMismatch(..))));
    }

    #[test]
    fn injectivity_catches_equality_experiments() {
        let h = Hedge::new().learn(n("a"), n("x")).unwrap();
        // Same left, different right: `[v is w]` distinguishes.
        let err = h.learn(n("a"), n("y")).unwrap_err();
        assert!(matches!(err, Inconsistency::Injectivity { .. }), "{err}");
        // Different left, same right: ditto.
        let err = h.learn(n("b"), n("x")).unwrap_err();
        assert!(matches!(err, Inconsistency::Injectivity { .. }), "{err}");
        // A genuinely fresh pair is fine.
        assert!(h.learn(n("b"), n("y")).is_ok());
    }

    #[test]
    fn ciphertexts_stay_opaque_without_the_key() {
        let r = Name::global("r").freshen();
        let e1 = Value::enc(vec![n("m")], r, n("k"));
        let e2 = Value::enc(vec![n("m2")], r.freshen(), n("k"));
        let h = Hedge::new().learn(e1, e2).unwrap();
        assert_eq!(h.pairs().len(), 1);
    }

    #[test]
    fn known_keys_open_ciphertexts_and_compare_payloads() {
        let h = Hedge::with_public_names(&[sym("k")]);
        let r = Name::global("r").freshen();
        let e1 = Value::enc(vec![n("a")], r, n("k"));
        let e2 = Value::enc(vec![n("a")], r.freshen(), n("k"));
        let h2 = h.learn(e1, e2).unwrap();
        // Opened: the payload pair (a, a) joins the leaves.
        assert!(h2.pairs().iter().any(|(l, _)| **l == *n("a")));
        // Divergent payloads under a known key are an experiment.
        let e3 = Value::enc(vec![n("a")], Name::global("r").freshen(), n("k"));
        let e4 = Value::enc(vec![n("b")], Name::global("r").freshen(), n("k"));
        // (a,a) already known, so (a,b) violates injectivity.
        assert!(h2.learn(e3, e4).is_err());
    }

    #[test]
    fn one_sided_decryption_is_an_experiment() {
        // kc is known; the left ciphertext uses a secret key instead.
        let h = Hedge::with_public_names(&[sym("kc")]);
        let e1 = Value::enc(vec![n("m")], Name::global("r").freshen(), n("kab"));
        let e2 = Value::enc(vec![n("m")], Name::global("r").freshen(), n("kc"));
        let err = h.learn(e1, e2).unwrap_err();
        assert!(
            matches!(err, Inconsistency::OneSidedDecryption { side: "rhs", .. }),
            "{err}"
        );
    }

    #[test]
    fn key_recipes_must_correspond() {
        // Attacker knows (g1, g1) and (g2, g2); left encrypts under g1,
        // right under g2: the g1-recipe decrypts only the left.
        let h = Hedge::with_public_names(&[sym("g1"), sym("g2")]);
        let e1 = Value::enc(vec![n("m")], Name::global("r").freshen(), n("g1"));
        let e2 = Value::enc(vec![n("m")], Name::global("r").freshen(), n("g2"));
        let err = h.learn(e1, e2).unwrap_err();
        assert!(matches!(err, Inconsistency::KeyMismatch { .. }), "{err}");
    }

    #[test]
    fn correspondence_synthesises_composites_but_never_names() {
        let h = Hedge::new().learn(n("a"), n("x")).unwrap();
        let got = h
            .correspond_left(&Value::pair(n("a"), Value::numeral(1)))
            .unwrap();
        assert_eq!(got, Value::pair(n("x"), Value::numeral(1)));
        assert_eq!(h.correspond_left(&n("unknown")), None);
        assert_eq!(h.correspond_right(&n("x")), Some(n("a")));
    }
}
