//! Smoke test for the attack-variant miner: mined mutants of the honest
//! protocol twins rediscover the committed broken variants.
//!
//! For each honest/broken sibling pair in the protocol zoo, the miner's
//! single-edit mutants of the *honest* spec must contain an edit the
//! bounded game separates from the honest original — and the separation
//! must agree with the zoo's hand-written broken twin, which the same
//! budgets also distinguish. Tight budgets: this is a smoke wall, the
//! full differential treatment lives in `tests/equiv_differential.rs`.

use nuspi_equiv::{check, mutations, EquivConfig, Verdict};
use nuspi_protocols::{broken_twins, ProtocolSpec};
use nuspi_syntax::{Process, Symbol};

fn smoke_cfg() -> EquivConfig {
    EquivConfig {
        game_depth: 5,
        max_plays: 4_000,
        tau_depth: 20,
        tau_states: 600,
        max_injections: 16,
        ..EquivConfig::default()
    }
}

/// The attacker's initial knowledge for a twin game: the spec's public
/// channels plus every policy-public free name of either side.
fn publics(spec: &ProtocolSpec, other: &Process) -> Vec<Symbol> {
    let mut v: Vec<Symbol> = spec
        .process
        .free_names()
        .into_iter()
        .chain(other.free_names())
        .map(|n| n.canonical())
        .filter(|s| spec.policy.is_public(*s))
        .chain(spec.public_channels.iter().copied())
        .collect();
    v.sort_by_key(|s| s.as_str().to_owned());
    v.dedup();
    v
}

#[test]
fn miner_enumerates_protocol_shaped_edits() {
    for (honest, _) in broken_twins() {
        let mutants = mutations(&honest.process);
        assert!(!mutants.is_empty(), "{}: no mutants", honest.name);
        for kind in ["swap", "replay", "expose"] {
            assert!(
                mutants.iter().any(|m| m.kind == kind),
                "{}: no {kind} mutant among {} edits",
                honest.name,
                mutants.len()
            );
        }
        // Labels are unique: each mutant names its edit site.
        let mut labels: Vec<&str> = mutants.iter().map(|m| m.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), mutants.len(), "{}", honest.name);
    }
}

#[test]
fn expose_mutants_rediscover_the_committed_leak() {
    let cfg = smoke_cfg();
    for (honest, broken) in broken_twins() {
        // The zoo's hand-written broken twin is separable at these budgets…
        let twin = check(
            &honest.process,
            &broken.process,
            &publics(&honest, &broken.process),
            &cfg,
        );
        assert!(
            matches!(twin.verdict, Verdict::Distinguished { .. }),
            "{} vs {}: {:?}",
            honest.name,
            broken.name,
            twin.verdict
        );

        // …and the miner independently finds an expose edit with the same
        // verdict: shipping an encrypted payload in the clear is exactly
        // the mistake the committed variant hand-writes.
        let mut separated = None;
        for mutant in mutations(&honest.process)
            .into_iter()
            .filter(|m| m.kind == "expose")
        {
            let report = check(
                &honest.process,
                &mutant.process,
                &publics(&honest, &mutant.process),
                &cfg,
            );
            if matches!(report.verdict, Verdict::Distinguished { .. }) {
                separated = Some(mutant.label);
                break;
            }
        }
        let Some(label) = separated else {
            panic!("{}: no expose mutant was distinguished", honest.name)
        };
        eprintln!("{}: rediscovered via `{label}`", honest.name);
    }
}
