//! Algebraic laws of the bounded hedged-bisimilarity checker: the game
//! must behave like an equivalence where it can afford to, and its
//! engine integration must treat the pair as unordered.

use nuspi_engine::{AnalysisEngine, EngineConfig, ProcessInput, Request};
use nuspi_equiv::{check, EquivConfig, Verdict};
use nuspi_syntax::{parse_process, Process, Symbol};

fn publics(names: &[&str]) -> Vec<Symbol> {
    names.iter().map(|n| Symbol::intern(n)).collect()
}

fn cfg() -> EquivConfig {
    EquivConfig::default()
}

#[test]
fn reflexivity_is_exact_and_free() {
    // Identical processes share an α-invariant digest: the fast path
    // answers without playing, whatever the process's size or features.
    for src in [
        "0",
        "c<m>.0",
        "c(x). d<x>.0",
        "!c(x). c<x>.0",
        "(new k) (c<{m, new r}:k>.0 | c(y). case y of {z}:k in d<z>.0)",
    ] {
        let p = parse_process(src).unwrap();
        let report = check(&p, &p, &publics(&["c", "d", "m"]), &cfg());
        assert!(
            matches!(report.verdict, Verdict::Bisimilar),
            "{src}: {:?}",
            report.verdict
        );
        assert_eq!(report.plays, 0, "{src} should take the digest fast path");
    }
}

#[test]
fn verdicts_are_symmetric() {
    let pairs = [
        // Distinguished: hide blocks the extrusion `new` allows.
        ("(new n) c<n>.0", "(hide n) c<n>.0"),
        // Bisimilar: payloads sealed under distinct restricted keys.
        ("(new k) c<{a, new r}:k>.0", "(new k2) c<{b, new r2}:k2>.0"),
        // Distinguished: clear payloads differ.
        ("c<a>.0", "c<b>.0"),
    ];
    for (l, r) in pairs {
        let (p, q) = (parse_process(l).unwrap(), parse_process(r).unwrap());
        let pub_names = publics(&["c", "a", "b"]);
        let lr = check(&p, &q, &pub_names, &cfg());
        let rl = check(&q, &p, &pub_names, &cfg());
        assert_eq!(
            lr.verdict.tag(),
            rl.verdict.tag(),
            "asymmetric verdict for ({l}, {r})"
        );
        assert_eq!(lr.plays, rl.plays, "asymmetric meters for ({l}, {r})");
    }
}

/// Disciplined α-conversion: freshen a binder the way the executor does.
fn alpha_rename(p: &Process) -> Process {
    match p {
        Process::Restrict { name, body } => {
            let fresh = name.freshen();
            Process::Restrict {
                name: fresh,
                body: Box::new(body.rename_name(*name, fresh)),
            }
        }
        Process::Hide { name, body } => {
            let fresh = name.freshen();
            Process::Hide {
                name: fresh,
                body: Box::new(body.rename_name(*name, fresh)),
            }
        }
        _ => panic!("test process must start with a binder"),
    }
}

#[test]
fn alpha_renamed_twin_is_bisimilar_without_playing() {
    let p = parse_process("(new k) c<{m, new r}:k>.0").unwrap();
    let q = alpha_rename(&p);
    assert_ne!(p, q, "renaming must change the syntax");
    let report = check(&p, &q, &publics(&["c", "m"]), &cfg());
    assert!(matches!(report.verdict, Verdict::Bisimilar));
    assert_eq!(report.plays, 0, "α-twins share a digest: no game needed");
}

#[test]
fn engine_caches_the_unordered_pair() {
    // (p, q) then (q, p): one slot, so the second submission is a cache
    // hit with a byte-identical body — α-renaming included.
    let engine = AnalysisEngine::new(EngineConfig {
        jobs: 1,
        ..EngineConfig::default()
    });
    let p = parse_process("(new n) c<n>.0").unwrap();
    let q = parse_process("(hide n) c<n>.0").unwrap();
    let first = engine.submit(Request::Equiv {
        left: ProcessInput::Parsed(p.clone()),
        right: ProcessInput::Parsed(q.clone()),
    });
    let second = engine.submit(Request::Equiv {
        left: ProcessInput::Parsed(alpha_rename(&q)),
        right: ProcessInput::Parsed(alpha_rename(&p)),
    });
    assert!(!first.cached);
    assert!(second.cached, "swapped α-renamed pair must hit the cache");
    assert_eq!(first.body, second.body);
    assert!(first.body.contains("\"verdict\":\"distinguished\""));
}

#[test]
fn hide_and_new_differ_exactly_by_extrusion() {
    // Pinned: the paper's §6 point that `hide` is not `new` — extrusion
    // of a `new`-bound name is observable, of a `hide`-bound one is not.
    let p = parse_process("(new n) c<n>.0").unwrap();
    let q = parse_process("(hide n) c<n>.0").unwrap();
    let report = check(&p, &q, &publics(&["c"]), &cfg());
    let Verdict::Distinguished { trace } = &report.verdict else {
        panic!("expected distinguished, got {:?}", report.verdict)
    };
    assert_eq!(
        trace,
        &vec![
            "lhs emits n on c".to_owned(),
            "no corresponding output on c from rhs".to_owned(),
        ]
    );
    // The mirrored game pins the mirrored trace.
    let mirror = check(&q, &p, &publics(&["c"]), &cfg());
    let Verdict::Distinguished { trace } = &mirror.verdict else {
        panic!("expected distinguished, got {:?}", mirror.verdict)
    };
    assert_eq!(
        trace,
        &vec![
            "rhs emits n on c".to_owned(),
            "no corresponding output on c from lhs".to_owned(),
        ]
    );
}
