//! Structured frontend errors.
//!
//! Every failure mode of the frontend — lexing, parsing, annotation
//! attachment, lowering — is a [`LangError`]: a message plus the
//! 1-based source position it anchors to. Errors convert into the
//! shared [`Diagnostic`] model (code `L001`, pass `lang`, a
//! [`Span::Source`] span), so CLI, engine, and tests all consume the
//! one representation and nothing in the frontend ever panics on bad
//! input.

use crate::token::Pos;
use nuspi_diagnostics::{Diagnostic, Severity, Span};

/// The diagnostic code shared by all frontend errors.
pub const LANG_ERROR_CODE: &str = "L001";

/// One frontend failure with its source anchor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LangError {
    /// Where in the source the problem is.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl LangError {
    pub(crate) fn new(pos: Pos, message: String) -> LangError {
        LangError { pos, message }
    }

    /// Converts into the shared diagnostic model.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic {
            code: LANG_ERROR_CODE,
            pass: "lang",
            severity: Severity::Error,
            span: Span::Source {
                line: self.pos.line,
                col: self.pos.col,
            },
            message: self.message.clone(),
            witness: Vec::new(),
        }
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_to_source_span_diagnostic() {
        let e = LangError::new(Pos::new(3, 7), "boom".into());
        let d = e.to_diagnostic();
        assert_eq!(d.code, "L001");
        assert_eq!(d.span, Span::Source { line: 3, col: 7 });
        assert_eq!(d.span.kind(), "source");
        assert_eq!(d.span.value(), "3:7");
        assert_eq!(e.to_string(), "3:7: boom");
    }
}
