//! The hand-rolled lexer: tokens with 1-based line/column positions,
//! plus the `//nuspi::…` annotation comments, which are lexed into
//! structured [`Annotation`]s instead of being thrown away.
//!
//! The grammar is newline-insensitive (statements are self-delimiting),
//! so whitespace is pure formatting: reformatting a program changes
//! token *positions* but never the token *sequence*, which is what lets
//! the lowering produce an α-digest-identical νSPI process for
//! formatting-only edits. Ordinary `//` comments are discarded;
//! annotation comments keep their position because attachment (which
//! declaration an annotation labels) is line-based.

use crate::error::LangError;

/// A 1-based source position.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters, not bytes).
    pub col: u32,
}

impl Pos {
    pub(crate) fn new(line: u32, col: u32) -> Pos {
        Pos { line, col }
    }
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// What a token is.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// An identifier or keyword-candidate.
    Ident(String),
    /// An unsigned integer literal.
    Int(u64),
    /// A string literal (content, unescaped).
    Str(String),
    /// `:=`
    Define,
    /// `<-`
    Arrow,
    /// `+`
    Plus,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
}

impl TokKind {
    /// A short human name for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokKind::Ident(s) => format!("`{s}`"),
            TokKind::Int(n) => format!("`{n}`"),
            TokKind::Str(_) => "string literal".to_owned(),
            TokKind::Define => "`:=`".to_owned(),
            TokKind::Arrow => "`<-`".to_owned(),
            TokKind::Plus => "`+`".to_owned(),
            TokKind::LParen => "`(`".to_owned(),
            TokKind::RParen => "`)`".to_owned(),
            TokKind::LBrace => "`{`".to_owned(),
            TokKind::RBrace => "`}`".to_owned(),
            TokKind::Comma => "`,`".to_owned(),
        }
    }
}

/// One token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token kind (and payload).
    pub kind: TokKind,
    /// Position of the token's first character.
    pub pos: Pos,
}

/// What an annotation comment declares.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnnKind {
    /// `//nuspi::label::{high}` — the declared datum carries the named
    /// security label (`high` is the binary lattice's only label).
    Label(String),
    /// `//nuspi::label::{conf:secret,integ:tainted}` — the declared
    /// datum is graded on the 4-point diamond lattice; an omitted axis
    /// defaults to that axis's bottom.
    Graded {
        /// Confidentiality axis label (diamond: `public`,
        /// `confidential`, `restricted`, `secret`).
        conf: String,
        /// Integrity axis label (diamond: `trusted`, `internal`,
        /// `external`, `tainted`).
        integ: String,
    },
    /// `//nuspi::sink::{}` — the declared channel is an observable sink
    /// (a free, public νSPI name).
    Sink,
    /// `//nuspi::secret` — the declared local is a confidential fresh
    /// name (`new`-restricted and policy-secret).
    Secret,
    /// `//nuspi::hide` — the declared local is bound by `hide` instead
    /// of `new`: secret by construction, and the no-extrusion rule
    /// forbids it from ever crossing its scope.
    Hide,
}

/// One parsed `//nuspi::…` annotation comment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Annotation {
    /// The annotation kind.
    pub kind: AnnKind,
    /// Position of the comment's first `/`.
    pub pos: Pos,
}

/// The lexer's output: the token stream and the annotation comments.
#[derive(Debug)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Annotations in source order.
    pub annotations: Vec<Annotation>,
}

/// Lexes `src`. The first malformed construct (unterminated string,
/// malformed annotation, unexpected character, integer overflow) is
/// reported as a structured [`LangError`] carrying its position.
pub fn lex(src: &str) -> Result<Lexed, LangError> {
    let mut tokens = Vec::new();
    let mut annotations = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            match c {
                Some('\n') => {
                    line += 1;
                    col = 1;
                }
                Some(_) => col += 1,
                None => {}
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let pos = Pos::new(line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            ';' => {
                // Optional statement separator, accepted and ignored.
                bump!();
            }
            '/' => {
                bump!();
                if chars.peek() != Some(&'/') {
                    return Err(LangError::new(pos, "unexpected character `/`".to_owned()));
                }
                bump!();
                let mut comment = String::new();
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    comment.push(c);
                    bump!();
                }
                // Anything that reads as a `nuspi::` annotation modulo
                // surrounding whitespace or letter case is an annotation
                // *attempt*: near-misses must be errors, never plain
                // comments, or a typo would silently weaken the policy.
                let body = comment.trim_start();
                match body.get(..7) {
                    Some(prefix) if prefix.eq_ignore_ascii_case("nuspi::") => {
                        if prefix != "nuspi::" {
                            return Err(LangError::new(
                                pos,
                                format!(
                                    "annotation prefix must be lowercase `nuspi::` \
                                     (found `{prefix}`)"
                                ),
                            ));
                        }
                        annotations.push(parse_annotation(body[prefix.len()..].trim(), pos)?);
                    }
                    // Ordinary comments (and `// expect: …` verdict
                    // headers) are formatting.
                    _ => {}
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match chars.peek() {
                        None => {
                            return Err(LangError::new(
                                pos,
                                "unterminated string literal".to_owned(),
                            ))
                        }
                        Some('\n') => {
                            return Err(LangError::new(
                                pos,
                                "unterminated string literal (newline before closing `\"`)"
                                    .to_owned(),
                            ))
                        }
                        Some('"') => {
                            bump!();
                            break;
                        }
                        Some('\\') => {
                            bump!();
                            match bump!() {
                                Some(e @ ('"' | '\\' | 'n' | 't')) => {
                                    s.push(if e == 'n' {
                                        '\n'
                                    } else if e == 't' {
                                        '\t'
                                    } else {
                                        e
                                    });
                                }
                                other => {
                                    return Err(LangError::new(
                                        pos,
                                        format!(
                                            "unsupported escape `\\{}` in string literal",
                                            other.map(String::from).unwrap_or_default()
                                        ),
                                    ))
                                }
                            }
                        }
                        Some(&c) => {
                            s.push(c);
                            bump!();
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokKind::Str(s),
                    pos,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if !d.is_ascii_digit() {
                        break;
                    }
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(u64::from(d as u8 - b'0')))
                        .ok_or_else(|| {
                            LangError::new(pos, "integer literal overflows u64".to_owned())
                        })?;
                    bump!();
                }
                tokens.push(Token {
                    kind: TokKind::Int(n),
                    pos,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if !(c.is_ascii_alphanumeric() || c == '_') {
                        break;
                    }
                    s.push(c);
                    bump!();
                }
                tokens.push(Token {
                    kind: TokKind::Ident(s),
                    pos,
                });
            }
            ':' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    tokens.push(Token {
                        kind: TokKind::Define,
                        pos,
                    });
                } else {
                    return Err(LangError::new(
                        pos,
                        "expected `:=` (assignment uses `:=`, not `:`)".to_owned(),
                    ));
                }
            }
            '<' => {
                bump!();
                if chars.peek() == Some(&'-') {
                    bump!();
                    tokens.push(Token {
                        kind: TokKind::Arrow,
                        pos,
                    });
                } else {
                    return Err(LangError::new(
                        pos,
                        "expected `<-` (the only `<` construct is channel send/receive)".to_owned(),
                    ));
                }
            }
            '+' | '(' | ')' | '{' | '}' | ',' => {
                bump!();
                let kind = match c {
                    '+' => TokKind::Plus,
                    '(' => TokKind::LParen,
                    ')' => TokKind::RParen,
                    '{' => TokKind::LBrace,
                    '}' => TokKind::RBrace,
                    _ => TokKind::Comma,
                };
                tokens.push(Token { kind, pos });
            }
            other => {
                return Err(LangError::new(
                    pos,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(Lexed {
        tokens,
        annotations,
    })
}

/// Parses the payload after `//nuspi::`. Unknown annotation names and
/// unknown labels are structured errors, not silently ignored — a typo
/// in an annotation must never weaken the policy.
fn parse_annotation(rest: &str, pos: Pos) -> Result<Annotation, LangError> {
    let kind = if rest == "secret" {
        AnnKind::Secret
    } else if rest == "hide" {
        AnnKind::Hide
    } else if rest == "sink::{}" {
        AnnKind::Sink
    } else if let Some(label) = rest
        .strip_prefix("label::{")
        .and_then(|r| r.strip_suffix('}'))
    {
        if label == "high" {
            AnnKind::Label(label.to_owned())
        } else if label.contains(':') {
            parse_graded_label(label, pos)?
        } else {
            return Err(LangError::new(
                pos,
                format!(
                    "unknown security label `{label}` (the binary lattice has only `high`; \
                     graded labels are written `conf:…`/`integ:…` pairs)"
                ),
            ));
        }
    } else {
        return Err(LangError::new(
            pos,
            format!(
                "unknown annotation `//nuspi::{rest}` \
                 (expected `label::{{…}}`, `sink::{{}}`, `secret`, or `hide`)"
            ),
        ));
    };
    Ok(Annotation { kind, pos })
}

/// Parses a graded label body: comma-separated `conf:<level>` /
/// `integ:<level>` pairs, each axis at most once, levels drawn from the
/// 4-point diamond lattice. An omitted axis defaults to its bottom.
fn parse_graded_label(label: &str, pos: Pos) -> Result<AnnKind, LangError> {
    let lat = nuspi_security::SecLattice::diamond4();
    let mut conf: Option<String> = None;
    let mut integ: Option<String> = None;
    for item in label.split(',') {
        let item = item.trim();
        let (axis, level) = item.split_once(':').ok_or_else(|| {
            LangError::new(
                pos,
                format!("graded label item `{item}` is not an `axis:level` pair"),
            )
        })?;
        let (axis, level) = (axis.trim(), level.trim());
        let (slot, points) = match axis {
            "conf" => (&mut conf, lat.conf()),
            "integ" => (&mut integ, lat.integ()),
            other => {
                return Err(LangError::new(
                    pos,
                    format!("unknown grading axis `{other}` (expected `conf` or `integ`)"),
                ))
            }
        };
        if points.index_of(level).is_none() {
            let known: Vec<&str> = points.labels().collect();
            return Err(LangError::new(
                pos,
                format!(
                    "unknown security label `{level}` on the `{axis}` axis \
                     (diamond levels: {})",
                    known.join(", ")
                ),
            ));
        }
        if slot.replace(level.to_owned()).is_some() {
            return Err(LangError::new(
                pos,
                format!("grading axis `{axis}` is given twice"),
            ));
        }
    }
    Ok(AnnKind::Graded {
        conf: conf.unwrap_or_else(|| lat.conf().label(lat.conf().bottom()).to_owned()),
        integ: integ.unwrap_or_else(|| lat.integ().label(lat.integ().bottom()).to_owned()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_tokens_with_positions() {
        let out = lex("x := make(chan)\nch <- 42").unwrap();
        assert_eq!(out.tokens.len(), 9);
        assert_eq!(out.tokens[0].kind, TokKind::Ident("x".into()));
        assert_eq!(out.tokens[0].pos, Pos::new(1, 1));
        assert_eq!(out.tokens[5].kind, TokKind::RParen);
        assert_eq!(out.tokens[6].pos, Pos::new(2, 1));
        assert_eq!(out.tokens[8].kind, TokKind::Int(42));
    }

    #[test]
    fn lexes_annotations_and_skips_plain_comments() {
        let out =
            lex("//nuspi::secret\n// a plain comment\nx := 1 //nuspi::label::{high}").unwrap();
        assert_eq!(out.annotations.len(), 2);
        assert_eq!(out.annotations[0].kind, AnnKind::Secret);
        assert_eq!(out.annotations[0].pos.line, 1);
        assert_eq!(out.annotations[1].kind, AnnKind::Label("high".into()));
        assert_eq!(out.annotations[1].pos.line, 3);
    }

    #[test]
    fn rejects_unterminated_strings_and_unknown_annotations() {
        assert!(lex("s := \"oops").is_err());
        assert!(lex("s := \"oops\nmore\"").is_err());
        let err = lex("//nuspi::frobnicate\n").unwrap_err();
        assert!(err.message.contains("unknown annotation"), "{err:?}");
        let err = lex("//nuspi::label::{low}\n").unwrap_err();
        assert!(err.message.contains("unknown security label"), "{err:?}");
    }

    #[test]
    fn near_miss_annotations_are_never_plain_comments() {
        // Leading whitespace is tolerated: still a well-formed attempt.
        let out = lex("// nuspi::secret\nx := 1").unwrap();
        assert_eq!(out.annotations.len(), 1);
        assert_eq!(out.annotations[0].kind, AnnKind::Secret);
        // Case drift in the prefix is a structured error, not a silently
        // dropped comment.
        let err = lex("//Nuspi::secret\n").unwrap_err();
        assert!(err.message.contains("lowercase `nuspi::`"), "{err:?}");
        let err = lex("// NUSPI::sink::{}\n").unwrap_err();
        assert!(err.message.contains("lowercase `nuspi::`"), "{err:?}");
        // A typo after the prefix keeps being an error.
        let err = lex("// nuspi::sekret\n").unwrap_err();
        assert!(err.message.contains("unknown annotation"), "{err:?}");
        // Prose that merely mentions the prefix mid-comment stays a
        // comment.
        let out = lex("// see nuspi::secret for details\nx := 1").unwrap();
        assert!(out.annotations.is_empty());
    }

    #[test]
    fn graded_labels_lex_with_axis_defaults() {
        let out = lex("//nuspi::label::{conf:secret,integ:tainted}\nx := 1").unwrap();
        assert_eq!(
            out.annotations[0].kind,
            AnnKind::Graded {
                conf: "secret".into(),
                integ: "tainted".into()
            }
        );
        // An omitted axis defaults to its bottom.
        let out = lex("//nuspi::label::{conf:restricted}\n").unwrap();
        assert_eq!(
            out.annotations[0].kind,
            AnnKind::Graded {
                conf: "restricted".into(),
                integ: "trusted".into()
            }
        );
        let out = lex("//nuspi::label::{integ:external}\n").unwrap();
        assert_eq!(
            out.annotations[0].kind,
            AnnKind::Graded {
                conf: "public".into(),
                integ: "external".into()
            }
        );
    }

    #[test]
    fn graded_label_typos_are_structured_errors() {
        let err = lex("//nuspi::label::{conf:sekrit}\n").unwrap_err();
        assert!(err.message.contains("unknown security label"), "{err:?}");
        assert!(err.message.contains("diamond levels"), "{err:?}");
        let err = lex("//nuspi::label::{axis:up}\n").unwrap_err();
        assert!(err.message.contains("unknown grading axis"), "{err:?}");
        let err = lex("//nuspi::label::{conf:secret,conf:public}\n").unwrap_err();
        assert!(err.message.contains("given twice"), "{err:?}");
        // A level from the wrong axis does not cross over.
        let err = lex("//nuspi::label::{integ:secret}\n").unwrap_err();
        assert!(err.message.contains("`integ` axis"), "{err:?}");
    }

    #[test]
    fn hide_annotation_lexes() {
        let out = lex("//nuspi::hide\nh := make(chan)").unwrap();
        assert_eq!(out.annotations[0].kind, AnnKind::Hide);
    }

    #[test]
    fn rejects_stray_characters_with_positions() {
        let err = lex("x := 1\n  @").unwrap_err();
        assert_eq!((err.pos.line, err.pos.col), (2, 3));
    }

    #[test]
    fn string_escapes_round_trip() {
        let out = lex("s := \"a\\\"b\\n\"").unwrap();
        assert_eq!(out.tokens[2].kind, TokKind::Str("a\"b\n".into()));
    }
}
