//! The span-carrying surface AST of the mini-language.
//!
//! ```text
//! program := { func-decl }
//! func-decl := "func" IDENT "(" [ IDENT { "," IDENT } ] ")" block
//! block := "{" { stmt } "}"
//! stmt := IDENT ":=" "make" "(" "chan" ")"      channel declaration
//!       | IDENT ":=" "<-" IDENT                 receive
//!       | IDENT ":=" expr                       value binding
//!       | IDENT "<-" expr                       send
//!       | "if" expr block [ "else" block ]
//!       | "for" block                           infinite loop
//!       | "go" IDENT "(" [ args ] ")"           spawn
//!       | IDENT "(" [ args ] ")"                call
//! expr := term { "+" term }
//! term := IDENT | INT | STRING | "(" expr ")"
//! ```
//!
//! Every node carries the position of its first token; statements also
//! record the line their last token ends on, which annotation
//! attachment (line-based) needs. The grammar is newline-insensitive:
//! statement boundaries fall out of the syntax, so formatting never
//! changes the parse.

use crate::token::{Annotation, Pos};

/// A whole compilation unit: its function declarations, in order.
#[derive(Clone, Debug)]
pub struct Program {
    /// The declared functions, in source order.
    pub funcs: Vec<FuncDecl>,
}

/// One `func name(params) { … }` declaration.
#[derive(Clone, Debug)]
pub struct FuncDecl {
    /// The function name.
    pub name: String,
    /// Position of the name token.
    pub pos: Pos,
    /// Parameter names with their positions.
    pub params: Vec<(String, Pos)>,
    /// The body.
    pub body: Block,
}

/// A `{ … }` statement block.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// One statement with its source extent and attached annotations.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// The statement itself.
    pub kind: StmtKind,
    /// Position of the first token.
    pub pos: Pos,
    /// Line the statement's last token starts on (for trailing
    /// annotation attachment).
    pub end_line: u32,
    /// Annotations attached by the line-based attachment pass.
    pub annotations: Vec<Annotation>,
}

/// The statement forms.
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// `x := expr`
    Let {
        /// The bound identifier.
        name: String,
        /// The initializer.
        value: Expr,
    },
    /// `x := make(chan)`
    MakeChan {
        /// The channel identifier.
        name: String,
    },
    /// `x := <-ch`
    Recv {
        /// The bound identifier.
        name: String,
        /// The channel identifier.
        chan: String,
        /// Position of the channel identifier.
        chan_pos: Pos,
    },
    /// `ch <- expr`
    Send {
        /// The channel identifier.
        chan: String,
        /// Position of the channel identifier.
        chan_pos: Pos,
        /// The sent value.
        value: Expr,
    },
    /// `if cond { … } else { … }`
    If {
        /// The condition.
        cond: Expr,
        /// The then-branch.
        then: Block,
        /// The optional else-branch.
        els: Option<Block>,
    },
    /// `for { … }` — an infinite loop.
    Loop {
        /// The loop body.
        body: Block,
    },
    /// `go f(args)`
    Go {
        /// The spawned call.
        call: Call,
    },
    /// `f(args)`
    Call(Call),
}

/// A call site: callee name, arguments, and position.
#[derive(Clone, Debug)]
pub struct Call {
    /// The callee.
    pub func: String,
    /// Position of the callee identifier.
    pub pos: Pos,
    /// The argument expressions.
    pub args: Vec<Expr>,
}

/// An expression with its position.
#[derive(Clone, Debug)]
pub struct Expr {
    /// The expression itself.
    pub kind: ExprKind,
    /// Position of the first token.
    pub pos: Pos,
}

/// The expression forms.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// A variable (or channel) reference.
    Var(String),
    /// An integer literal.
    Int(u64),
    /// A string literal.
    Str(String),
    /// `a + b` — lowered as a pair, so taint joins conservatively.
    Add(Box<Expr>, Box<Expr>),
}
