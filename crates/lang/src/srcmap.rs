//! The source map: from every νSPI name the lowering mints back to the
//! surface declaration it came from.
//!
//! Keys are *canonical base strings* (what [`Name::canonical`] renders
//! to), because that is the currency of the analysis diagnostics: a
//! witness trace or a [`Span::Channel`] names canonical symbols, and
//! the driver resolves them here to `file:line:col` anchors.
//!
//! [`Name::canonical`]: nuspi_syntax::Name::canonical
//! [`Span::Channel`]: nuspi_diagnostics::Span::Channel

use std::collections::BTreeMap;

/// What kind of surface declaration a generated name came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// A `//nuspi::sink::{}` channel: a free, public observable.
    Sink,
    /// An ordinary `make(chan)` channel: restricted and policy-secret.
    Channel,
    /// A `//nuspi::label::{high}` (or graded `conf:…`/`integ:…`) datum.
    High,
    /// A `//nuspi::secret` datum.
    Secret,
    /// A `//nuspi::hide` local: bound by `hide`, secret by
    /// construction, forbidden from crossing its scope.
    Hidden,
}

impl Role {
    /// Stable lowercase name, used by the JSON backend.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Sink => "sink",
            Role::Channel => "channel",
            Role::High => "high",
            Role::Secret => "secret",
            Role::Hidden => "hidden",
        }
    }

    /// Whether this site is a labeled/confidential *origin* of data
    /// (as opposed to plumbing or a sink).
    pub fn is_origin(self) -> bool {
        matches!(self, Role::High | Role::Secret | Role::Hidden)
    }
}

/// One declaration site in the surface program.
#[derive(Clone, Debug)]
pub struct Site {
    /// The surface identifier as written.
    pub ident: String,
    /// What the declaration is.
    pub role: Role,
    /// The security label, if the declaration carried one.
    pub label: Option<String>,
    /// 1-based declaration line.
    pub line: u32,
    /// 1-based declaration column.
    pub col: u32,
}

/// The map from canonical νSPI base names to their declaration sites.
#[derive(Clone, Debug, Default)]
pub struct SourceMap {
    /// The file the program came from (as given to the driver).
    pub file: String,
    /// Declaration sites keyed by canonical base string. A `BTreeMap`
    /// so iteration (and thus every render) is deterministic.
    pub sites: BTreeMap<String, Site>,
}

impl SourceMap {
    /// Looks up the site for a canonical base string.
    pub fn site(&self, base: &str) -> Option<&Site> {
        self.sites.get(base)
    }
}
