//! # nuspi-lang — an annotated-source IFC frontend for νSPI
//!
//! A hand-rolled lexer and recursive-descent parser for a Go-ish
//! imperative mini-language (assignments, `if`/`for`, functions,
//! channel `make`/send/receive, `go`), plus a static lowering into νSPI
//! processes that the existing CFA + confinement + invariance pipeline
//! analyses unchanged. Security intent is written as comment
//! annotations:
//!
//! ```text
//! //nuspi::sink::{}        the next channel is an observable sink
//! //nuspi::label::{high}   the next declaration is high-labeled data
//! //nuspi::secret          the next declaration is a confidential name
//! //nuspi::hide            the next declaration is hide-bound: secret by
//!                          construction, forbidden from leaving its scope
//! //nuspi::label::{conf:secret,integ:tainted}
//!                          graded label on the 4-point diamond lattice
//!                          (an omitted axis defaults to its bottom)
//! ```
//!
//! The lowering records a [`SourceMap`] from every νSPI name it mints
//! back to the `file:line:col` of the surface declaration, so analysis
//! verdicts render in source terms: *"value labeled `high` at
//! examples/lang/03_channels_leak.nu:9:3 reaches sink `pub_out`
//! declared at examples/lang/03_channels_leak.nu:3:3"*.
//!
//! Minted names are mangled by declaration order, never by position, so
//! a formatting-only edit lowers to an α-digest-identical process —
//! which is exactly what the engine's `analyze_source` op caches on.
//!
//! ```
//! use nuspi_lang::{check, Verdict};
//!
//! let src = "func main() {\n\
//!            //nuspi::sink::{}\n\
//!            out := make(chan)\n\
//!            //nuspi::label::{high}\n\
//!            pin := 1234\n\
//!            out <- pin\n\
//!            }";
//! let report = check("demo.nu", src);
//! assert_eq!(report.verdict, Verdict::Insecure);
//! assert!(report.diags.iter().any(|d| d.origin.is_some() && d.sink.is_some()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod check;
mod error;
mod lower;
mod parser;
mod srcmap;
mod token;

pub use ast::{Block, Call, Expr, ExprKind, FuncDecl, Program, Stmt, StmtKind};
pub use check::{
    check, check_to_json, check_to_json_compact, check_with, compile, render_check, render_sourced,
    Anchor, CheckReport, Compiled, SourcedDiagnostic, Verdict,
};
pub use error::{LangError, LANG_ERROR_CODE};
pub use lower::{lower, Lowered};
pub use parser::parse;
pub use srcmap::{Role, Site, SourceMap};
pub use token::{lex, AnnKind, Annotation, Lexed, Pos, TokKind, Token};
