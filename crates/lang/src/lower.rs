//! Static lowering from the surface AST into a νSPI process.
//!
//! The translation walks each statement sequence *iteratively*, pushing
//! one process wrapper per statement and folding the wrappers over the
//! lowered tail — so a flat million-statement program costs no call
//! stack. Recursion happens only for *nesting* (branch bodies, loop
//! bodies, inlined callees), which the parser bounds at `MAX_DEPTH`
//! levels and the lowering bounds at [`MAX_INLINE_DEPTH`] inlined calls.
//!
//! - `x := make(chan)` mints a νSPI name for the channel. Ordinary
//!   channels are `new`-restricted and declared policy-secret (an
//!   internal channel is not an observable); `//nuspi::sink::{}`
//!   channels stay *free* under the bare surface identifier — a free
//!   public name is exactly what the analysis treats as
//!   attacker-observable.
//! - `//nuspi::label::{high}` / `//nuspi::secret` declarations mint a
//!   restricted, policy-secret name and bind the identifier to it; the
//!   initializer (if any) is checked for undeclared variables but the
//!   annotation overrides its value. Graded labels
//!   (`//nuspi::label::{conf:secret,integ:tainted}`) mint a restricted
//!   name carrying a diamond-lattice level instead of a bare secret
//!   entry, and `//nuspi::hide` declarations are bound by `hide` —
//!   secret by construction, with no policy entry at all.
//! - `ch <- e` / `x := <-ch` become `Output` / `Input`.
//! - `if` becomes `CaseNat`. The statement-level continuation is
//!   lowered exactly *once* and sequenced behind a fresh restricted
//!   **join channel**: each branch ends by signalling the join, and the
//!   continuation runs guarded by one input on it
//!   (`case … then.j⟨0⟩ else.j⟨0⟩ | j(_).rest`). Duplicating the
//!   continuation into both branches instead would make N sequential
//!   `if`s lower to a 2^N-size process.
//! - `for { … }` becomes a replicated body in parallel with the
//!   continuation, `go f(…)` runs the callee in parallel.
//! - Calls are inlined (the callee body is lowered at each call site
//!   with parameters bound to the lowered arguments) behind the same
//!   join discipline, so the statements after a call are also lowered
//!   once. Recursion is a structured error, so inlining terminates —
//!   but a DAG of functions that each call the next twice still doubles
//!   per level, so the total lowered size is capped at
//!   [`MAX_LOWERED_STMTS`] statements and overruns are structured
//!   [`LangError`]s, matching the parser's totality guarantee.
//!
//! Minted names are mangled by **declaration order** (`main.x`,
//! `main.x.2`, …), never by line/column — so a formatting-only edit
//! lowers to an α-digest-identical process, which is what the engine's
//! cache keys on. Every surface-declared name is recorded in the
//! [`SourceMap`]; join channels (`main.#seq`, …) are internal plumbing:
//! restricted but neither policy-secret nor mapped, so they can never
//! surface in a verdict or weaken a policy.

use crate::ast::{Call, Expr, ExprKind, FuncDecl, Program, Stmt, StmtKind};
use crate::error::LangError;
use crate::srcmap::{Role, Site, SourceMap};
use crate::token::{AnnKind, Pos};
use nuspi_syntax::{builder as b, Expr as SpiExpr, Name, Process, Var};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// Numerals larger than this lower to the capped numeral: magnitude is
/// irrelevant to information flow, and unbounded `suc` chains would let
/// a literal blow up the process size.
const NUMERAL_CAP: u64 = 8;

/// Deepest chain of inlined calls. Recursion is already rejected, but a
/// long `f1 → f2 → … → fN` chain would otherwise recurse one lowering
/// frame per hop; past this depth the call is a structured error.
const MAX_INLINE_DEPTH: usize = 64;

/// Total statements the lowering will expand (inlined callee bodies
/// count once per call site). This bounds both the lowered process's
/// size and its depth, keeping every downstream consumer — digesting,
/// linting, solving, all recursive over the term — safely within stack
/// budgets no matter what source arrives over the wire (the check
/// driver moves large programs onto a dedicated wide-stack thread, and
/// this cap is what makes "large" finite).
const MAX_LOWERED_STMTS: usize = 5_000;

/// The result of lowering a program.
#[derive(Debug)]
pub struct Lowered {
    /// The νSPI process.
    pub process: Process,
    /// Canonical base names that are policy-secret, sorted.
    pub secrets: Vec<String>,
    /// Graded declarations `(base, conf, integ)` on the 4-point diamond
    /// lattice, sorted by base. Empty for binary-lattice programs.
    pub graded: Vec<(String, String, String)>,
    /// Declaration sites for every minted name.
    pub sites: BTreeMap<String, Site>,
    /// Statements expanded during lowering — an upper bound on the
    /// process's size *and* depth (≤ [`MAX_LOWERED_STMTS`]), which the
    /// check driver uses to decide whether analysis needs a wide stack.
    pub stmts: usize,
}

impl Lowered {
    /// Packages the sites as a [`SourceMap`] for `file`.
    pub fn source_map(&self, file: &str) -> SourceMap {
        SourceMap {
            file: file.to_owned(),
            sites: self.sites.clone(),
        }
    }
}

/// What a surface identifier is bound to during lowering.
#[derive(Clone)]
enum Binding {
    /// A channel: a νSPI name usable as a subject of send/receive.
    Chan(Name),
    /// A value: substituted (cloned) at each use site.
    Val(SpiExpr),
    /// A process-level variable bound by an `Input`.
    BoundVar(Var),
}

/// One lexical frame: the visible bindings plus the call stack used for
/// recursion detection. Cheap to clone (the stack is shared).
#[derive(Clone)]
struct Scope {
    vars: HashMap<String, Binding>,
    func: Rc<str>,
    stack: Rc<Vec<Rc<str>>>,
}

/// What runs after the current statement sequence finishes: nothing, or
/// a completion signal on a join channel (see [`signal`]).
#[derive(Clone, Copy)]
enum Cont {
    /// Nothing left: the inert process.
    Done,
    /// Signal the join channel that sequences this body before its
    /// continuation.
    Join(Name),
}

/// The process a finished sequence ends in.
fn signal(cont: Cont) -> Process {
    match cont {
        Cont::Done => b::nil(),
        Cont::Join(j) => b::output(b::name_expr(j), b::zero(), b::nil()),
    }
}

struct Ctx<'a> {
    funcs: HashMap<&'a str, &'a FuncDecl>,
    /// Declaration counters keyed by `func.ident`, for stable mangling.
    counters: HashMap<String, u32>,
    /// Minted names to hoist as `new`-restrictions, in mint order.
    restricted: Vec<Name>,
    /// Minted names to hoist as `hide` binders, in mint order.
    hidden: Vec<Name>,
    secrets: Vec<String>,
    /// Graded declarations: `(base, conf label, integ label)`.
    graded: Vec<(String, String, String)>,
    sites: BTreeMap<String, Site>,
    /// Statements expanded so far, against [`MAX_LOWERED_STMTS`].
    lowered_stmts: usize,
}

/// Lowers a parsed program. `main` is the entry point; every failure
/// (no `main`, undeclared identifiers, channel misuse, recursion,
/// arity mismatches, over-budget expansion) is a structured
/// [`LangError`].
pub fn lower(program: &Program) -> Result<Lowered, LangError> {
    let mut funcs: HashMap<&str, &FuncDecl> = HashMap::new();
    for f in &program.funcs {
        if funcs.insert(f.name.as_str(), f).is_some() {
            return Err(LangError::new(
                f.pos,
                format!("function `{}` is declared twice", f.name),
            ));
        }
    }
    let main = *funcs
        .get("main")
        .ok_or_else(|| LangError::new(Pos::new(1, 1), "no `func main()` found".to_owned()))?;
    if !main.params.is_empty() {
        return Err(LangError::new(
            main.pos,
            "`main` takes no parameters".to_owned(),
        ));
    }
    let mut ctx = Ctx {
        funcs,
        counters: HashMap::new(),
        restricted: Vec::new(),
        hidden: Vec::new(),
        secrets: Vec::new(),
        graded: Vec::new(),
        sites: BTreeMap::new(),
        lowered_stmts: 0,
    };
    let name: Rc<str> = Rc::from("main");
    let scope = Scope {
        vars: HashMap::new(),
        func: name.clone(),
        stack: Rc::new(vec![name]),
    };
    let body = lower_seq(&mut ctx, &main.body.stmts, scope, Cont::Done)?;
    // `hide` binders sit inside the `new` prefix; for hide-free programs
    // `hide_all` is the identity, so their lowering is byte-unchanged.
    let process = b::restrict_all(ctx.restricted, b::hide_all(ctx.hidden, body));
    let mut secrets = ctx.secrets;
    secrets.sort();
    secrets.dedup();
    let mut graded = ctx.graded;
    graded.sort();
    Ok(Lowered {
        process,
        secrets,
        graded,
        sites: ctx.sites,
        stmts: ctx.lowered_stmts,
    })
}

impl<'a> Ctx<'a> {
    /// Mints a bound name for a declaration of `ident` in `func`,
    /// mangled by declaration order. Ordinary declarations are
    /// `new`-restricted and policy-secret; graded declarations are
    /// restricted but carry a lattice level instead of a bare secret
    /// entry; `hide` declarations are hide-bound and need *no* policy
    /// entry — the binder itself makes them secret.
    fn mint(&mut self, func: &str, ident: &str, ann: &Classified, pos: Pos) -> Name {
        let key = format!("{func}.{ident}");
        let n = self.counters.entry(key.clone()).or_insert(0);
        *n += 1;
        let base = if *n == 1 { key } else { format!("{key}.{n}") };
        let name = Name::global(base.as_str());
        if ann.role() == Role::Hidden {
            self.hidden.push(name);
        } else {
            self.restricted.push(name);
            match &ann.graded {
                Some((conf, integ)) => {
                    self.graded
                        .push((base.clone(), conf.clone(), integ.clone()))
                }
                None => self.secrets.push(base.clone()),
            }
        }
        self.sites.insert(
            base,
            Site {
                ident: ident.to_owned(),
                role: ann.role(),
                label: ann.label.clone(),
                line: pos.line,
                col: pos.col,
            },
        );
        name
    }

    /// Mints a restricted join channel for sequencing in `func`. The
    /// `#seq` segment cannot be written in the surface language, so
    /// joins never collide with user declarations; they carry only the
    /// public completion signal `0`, so they are *not* policy secrets
    /// and get no source-map site.
    fn mint_join(&mut self, func: &str) -> Name {
        let key = format!("{func}.#seq");
        let n = self.counters.entry(key.clone()).or_insert(0);
        *n += 1;
        let base = if *n == 1 { key } else { format!("{key}.{n}") };
        let name = Name::global(base.as_str());
        self.restricted.push(name);
        name
    }

    /// A sink channel: the bare surface identifier as a *free* νSPI
    /// name. Re-declaring the same sink reuses the name (sinks are
    /// global observables); the first declaration site wins.
    fn sink(&mut self, ident: &str, pos: Pos) -> Name {
        self.sites.entry(ident.to_owned()).or_insert(Site {
            ident: ident.to_owned(),
            role: Role::Sink,
            label: None,
            line: pos.line,
            col: pos.col,
        });
        Name::global(ident)
    }

    /// Accounts one expanded statement against [`MAX_LOWERED_STMTS`].
    fn spend(&mut self, pos: Pos) -> Result<(), LangError> {
        self.lowered_stmts += 1;
        if self.lowered_stmts > MAX_LOWERED_STMTS {
            return Err(LangError::new(
                pos,
                format!(
                    "program expands to more than {MAX_LOWERED_STMTS} lowered statements \
                     (inlined calls repeat callee bodies); split the program up"
                ),
            ));
        }
        Ok(())
    }
}

/// The declaration classification a statement's annotations give it.
struct Classified {
    /// `//nuspi::sink::{}` was present.
    sink: bool,
    /// The origin role an annotation declares, if any.
    origin: Option<Role>,
    /// The label as written (for anchors and messages).
    label: Option<String>,
    /// The diamond-lattice grading, when the label was graded.
    graded: Option<(String, String)>,
}

impl Classified {
    /// The role a minted declaration gets: the annotated origin role,
    /// or `Channel` plumbing.
    fn role(&self) -> Role {
        self.origin.unwrap_or(Role::Channel)
    }
}

fn classify(s: &Stmt) -> Classified {
    let mut c = Classified {
        sink: false,
        origin: None,
        label: None,
        graded: None,
    };
    for a in &s.annotations {
        match &a.kind {
            AnnKind::Sink => c.sink = true,
            AnnKind::Secret => c.origin = Some(Role::Secret),
            AnnKind::Hide => c.origin = Some(Role::Hidden),
            AnnKind::Label(l) => {
                c.origin = Some(Role::High);
                c.label = Some(l.clone());
            }
            AnnKind::Graded { conf, integ } => {
                c.origin = Some(Role::High);
                c.label = Some(format!("conf:{conf},integ:{integ}"));
                c.graded = Some((conf.clone(), integ.clone()));
            }
        }
    }
    c
}

/// One process layer contributed by a single statement; collected
/// front-to-back, folded back-to-front over the lowered tail.
enum Wrap {
    /// `chan(var). ⟨tail⟩`
    Recv { chan: Name, var: Var },
    /// `chan⟨msg⟩. ⟨tail⟩`
    Send { chan: Name, msg: SpiExpr },
    /// `spawned | ⟨tail⟩` — a `for` replication or a `go` call.
    Spawn(Process),
    /// `body | join(_). ⟨tail⟩` — an `if` or an inlined call whose
    /// every path signals `join` exactly once, so the tail is lowered
    /// (and sized) once no matter how many paths reach it.
    Join { join: Name, body: Process },
}

fn lower_seq<'a>(
    ctx: &mut Ctx<'a>,
    stmts: &'a [Stmt],
    mut scope: Scope,
    cont: Cont,
) -> Result<Process, LangError> {
    let mut wraps: Vec<Wrap> = Vec::new();
    let mut stmts = stmts;
    // Iterative over the flat sequence: the loop recurses only into
    // nested bodies, never into the statements that follow.
    while let Some((s, rest)) = stmts.split_first() {
        stmts = rest;
        ctx.spend(s.pos)?;
        let ann = classify(s);
        match &s.kind {
            StmtKind::MakeChan { name } => {
                let chan = if ann.sink {
                    ctx.sink(name, s.pos)
                } else {
                    ctx.mint(&scope.func.clone(), name, &ann, s.pos)
                };
                scope.vars.insert(name.clone(), Binding::Chan(chan));
            }
            StmtKind::Let { name, value } => {
                let binding = match ann.origin {
                    Some(_) => {
                        // Check the initializer for undeclared identifiers,
                        // then let the annotation override its value.
                        check_expr(&scope, value)?;
                        let n = ctx.mint(&scope.func.clone(), name, &ann, s.pos);
                        Binding::Val(b::name_expr(n))
                    }
                    None => Binding::Val(lower_expr(&scope, value)?),
                };
                scope.vars.insert(name.clone(), binding);
            }
            StmtKind::Recv {
                name,
                chan,
                chan_pos,
            } => {
                let ch = channel(&scope, chan, *chan_pos)?;
                let v = Var::fresh(name.as_str());
                let binding = match ann.origin {
                    Some(_) => {
                        let n = ctx.mint(&scope.func.clone(), name, &ann, s.pos);
                        Binding::Val(b::name_expr(n))
                    }
                    None => Binding::BoundVar(v),
                };
                scope.vars.insert(name.clone(), binding);
                wraps.push(Wrap::Recv { chan: ch, var: v });
            }
            StmtKind::Send {
                chan,
                chan_pos,
                value,
            } => {
                let ch = channel(&scope, chan, *chan_pos)?;
                let msg = lower_expr(&scope, value)?;
                wraps.push(Wrap::Send { chan: ch, msg });
            }
            StmtKind::If { cond, then, els } => {
                let c = lower_expr(&scope, cond)?;
                let join = ctx.mint_join(&scope.func.clone());
                let then_p = lower_seq(ctx, &then.stmts, scope.clone(), Cont::Join(join))?;
                let else_p = match els {
                    Some(e) => lower_seq(ctx, &e.stmts, scope.clone(), Cont::Join(join))?,
                    None => signal(Cont::Join(join)),
                };
                wraps.push(Wrap::Join {
                    join,
                    body: b::case_nat(c, else_p, Var::fresh("_pred"), then_p),
                });
            }
            StmtKind::Loop { body } => {
                let body_p = lower_seq(ctx, &body.stmts, scope.clone(), Cont::Done)?;
                wraps.push(Wrap::Spawn(b::replicate(body_p)));
            }
            StmtKind::Go { call } => {
                let spawned = lower_call(ctx, call, &scope, Cont::Done)?;
                wraps.push(Wrap::Spawn(spawned));
            }
            StmtKind::Call(call) => {
                let join = ctx.mint_join(&scope.func.clone());
                let body = lower_call(ctx, call, &scope, Cont::Join(join))?;
                wraps.push(Wrap::Join { join, body });
            }
        }
    }
    let mut p = signal(cont);
    for w in wraps.into_iter().rev() {
        p = match w {
            Wrap::Recv { chan, var } => b::input(b::name_expr(chan), var, p),
            Wrap::Send { chan, msg } => b::output(b::name_expr(chan), msg, p),
            Wrap::Spawn(q) => b::par(q, p),
            Wrap::Join { join, body } => {
                b::par(body, b::input(b::name_expr(join), Var::fresh("_join"), p))
            }
        };
    }
    Ok(p)
}

fn lower_call<'a>(
    ctx: &mut Ctx<'a>,
    call: &'a Call,
    caller: &Scope,
    cont: Cont,
) -> Result<Process, LangError> {
    let callee = *ctx.funcs.get(call.func.as_str()).ok_or_else(|| {
        LangError::new(
            call.pos,
            format!("call to undefined function `{}`", call.func),
        )
    })?;
    if caller.stack.iter().any(|f| f.as_ref() == call.func) {
        return Err(LangError::new(
            call.pos,
            format!(
                "recursive call to `{}` (calls are inlined; recursion is not supported)",
                call.func
            ),
        ));
    }
    if caller.stack.len() >= MAX_INLINE_DEPTH {
        return Err(LangError::new(
            call.pos,
            format!("calls inlined deeper than {MAX_INLINE_DEPTH} levels"),
        ));
    }
    if call.args.len() != callee.params.len() {
        return Err(LangError::new(
            call.pos,
            format!(
                "`{}` takes {} argument(s), {} given",
                call.func,
                callee.params.len(),
                call.args.len()
            ),
        ));
    }
    let mut vars = HashMap::new();
    for ((param, _), arg) in callee.params.iter().zip(&call.args) {
        // A bare identifier argument passes its binding through, so a
        // channel stays a channel in the callee.
        let binding = match &arg.kind {
            ExprKind::Var(x) => match caller.vars.get(x) {
                Some(binding) => binding.clone(),
                None => {
                    return Err(LangError::new(
                        arg.pos,
                        format!("undeclared identifier `{x}`"),
                    ))
                }
            },
            _ => Binding::Val(lower_expr(caller, arg)?),
        };
        vars.insert(param.clone(), binding);
    }
    let fname: Rc<str> = Rc::from(call.func.as_str());
    let mut stack = caller.stack.as_ref().clone();
    stack.push(fname.clone());
    let callee_scope = Scope {
        vars,
        func: fname,
        stack: Rc::new(stack),
    };
    lower_seq(ctx, &callee.body.stmts, callee_scope, cont)
}

/// Resolves `ident` to a channel name, or errors.
fn channel(scope: &Scope, ident: &str, pos: Pos) -> Result<Name, LangError> {
    match scope.vars.get(ident) {
        Some(Binding::Chan(n)) => Ok(*n),
        Some(_) => Err(LangError::new(
            pos,
            format!("`{ident}` is not a channel (declared without `make(chan)`)"),
        )),
        None => Err(LangError::new(pos, format!("undeclared channel `{ident}`"))),
    }
}

fn lower_expr(scope: &Scope, e: &Expr) -> Result<SpiExpr, LangError> {
    match &e.kind {
        ExprKind::Var(x) => match scope.vars.get(x) {
            Some(Binding::Chan(n)) => Ok(b::name_expr(*n)),
            Some(Binding::Val(v)) => Ok(v.clone()),
            Some(Binding::BoundVar(v)) => Ok(b::var(*v)),
            None => Err(LangError::new(
                e.pos,
                format!("undeclared identifier `{x}`"),
            )),
        },
        ExprKind::Int(n) => Ok(b::numeral(n.min(&NUMERAL_CAP).to_owned() as u32)),
        // Strings are opaque public data: magnitude-free, label-free.
        ExprKind::Str(_) => Ok(b::numeral(0)),
        // `+` joins taint conservatively: a pair carries both operands.
        ExprKind::Add(a, c) => Ok(b::pair(lower_expr(scope, a)?, lower_expr(scope, c)?)),
    }
}

/// Validates identifiers in an expression without lowering it (used for
/// the ignored initializer of an annotated declaration).
fn check_expr(scope: &Scope, e: &Expr) -> Result<(), LangError> {
    match &e.kind {
        ExprKind::Var(x) => {
            if scope.vars.contains_key(x) {
                Ok(())
            } else {
                Err(LangError::new(
                    e.pos,
                    format!("undeclared identifier `{x}`"),
                ))
            }
        }
        ExprKind::Int(_) | ExprKind::Str(_) => Ok(()),
        ExprKind::Add(a, c) => {
            check_expr(scope, a)?;
            check_expr(scope, c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use nuspi_syntax::canonical_digest;

    fn lower_src(src: &str) -> Result<Lowered, LangError> {
        lower(&parse(src).expect("parse"))
    }

    #[test]
    fn channels_are_restricted_and_secret_sinks_are_free() {
        let l = lower_src(
            "func main() {\n\
             //nuspi::sink::{}\n\
             out := make(chan)\n\
             ch := make(chan)\n\
             ch <- 1\n\
             out <- 2\n\
             }",
        )
        .unwrap();
        assert_eq!(l.secrets, vec!["main.ch".to_owned()]);
        assert!(l.sites.contains_key("out"));
        assert_eq!(l.sites["out"].role, Role::Sink);
        assert_eq!(l.sites["main.ch"].role, Role::Channel);
        // `out` is free, `main.ch` is not.
        let free: Vec<String> = l
            .process
            .free_names()
            .iter()
            .map(|n| n.to_string())
            .collect();
        assert!(free.contains(&"out".to_owned()), "{free:?}");
        assert!(!free.iter().any(|n| n.contains("main.ch")), "{free:?}");
    }

    #[test]
    fn redeclaration_mangles_by_declaration_order() {
        let l = lower_src(
            "func main() {\nch := make(chan)\nif 1 { ch := make(chan)\nch <- 1 } else {}\nch <- 0\n}",
        )
        .unwrap();
        assert_eq!(
            l.secrets,
            vec!["main.ch".to_owned(), "main.ch.2".to_owned()]
        );
    }

    #[test]
    fn reformatting_preserves_the_canonical_digest() {
        let a = lower_src("func main() {\nch := make(chan)\nch <- 1 + 2\n}").unwrap();
        let b_ = lower_src(
            "// a comment\nfunc main()   {\n\n\n    ch := make(chan)\n    ch <- 1 + 2\n\n}\n",
        )
        .unwrap();
        assert_eq!(
            canonical_digest(&a.process).0,
            canonical_digest(&b_.process).0
        );
    }

    #[test]
    fn recursion_and_unknown_calls_are_errors() {
        let e = lower_src("func f() { f() }\nfunc main() { f() }").unwrap_err();
        assert!(e.message.contains("recursive"), "{e:?}");
        let e = lower_src("func main() { g() }").unwrap_err();
        assert!(e.message.contains("undefined function"), "{e:?}");
        let e = lower_src("func f(a) {}\nfunc main() { f() }").unwrap_err();
        assert!(e.message.contains("argument"), "{e:?}");
    }

    #[test]
    fn sequential_calls_are_not_recursion() {
        let l =
            lower_src("func f(ch) { ch <- 1 }\nfunc main() {\nch := make(chan)\nf(ch)\nf(ch)\n}");
        assert!(l.is_ok(), "{:?}", l.err());
    }

    #[test]
    fn channel_misuse_is_an_error() {
        let e = lower_src("func main() {\nx := 1\nx <- 2\n}").unwrap_err();
        assert!(e.message.contains("not a channel"), "{e:?}");
        let e = lower_src("func main() {\ny := <-nope\n}").unwrap_err();
        assert!(e.message.contains("undeclared channel"), "{e:?}");
    }

    #[test]
    fn annotated_declarations_mint_secret_names() {
        let l = lower_src(
            "func main() {\n\
             //nuspi::label::{high}\n\
             pin := 1234\n\
             //nuspi::secret\n\
             key := 0\n\
             ch := make(chan)\n\
             ch <- pin + key\n\
             }",
        )
        .unwrap();
        assert_eq!(l.sites["main.pin"].role, Role::High);
        assert_eq!(l.sites["main.pin"].label.as_deref(), Some("high"));
        assert_eq!(l.sites["main.key"].role, Role::Secret);
        assert!(l.secrets.contains(&"main.pin".to_owned()));
        assert!(l.secrets.contains(&"main.key".to_owned()));
    }

    #[test]
    fn hide_declarations_are_hide_bound_with_no_policy_entry() {
        let l = lower_src(
            "func main() {\n\
             //nuspi::hide\n\
             h := make(chan)\n\
             h <- 0\n\
             }",
        )
        .unwrap();
        // The binder itself makes `h` secret: no policy entry needed.
        assert!(l.secrets.is_empty(), "{:?}", l.secrets);
        assert_eq!(l.sites["main.h"].role, Role::Hidden);
        let hidden: Vec<String> = l
            .process
            .hidden_names()
            .into_iter()
            .map(|s| s.as_str().to_owned())
            .collect();
        assert_eq!(hidden, ["main.h"]);
        assert!(!l
            .process
            .free_names()
            .iter()
            .any(|n| n.to_string().contains("main.h")));
    }

    #[test]
    fn graded_declarations_carry_levels_not_secret_entries() {
        let l = lower_src(
            "func main() {\n\
             //nuspi::label::{conf:secret,integ:tainted}\n\
             key := 1\n\
             ch := make(chan)\n\
             ch <- key\n\
             }",
        )
        .unwrap();
        assert_eq!(
            l.graded,
            vec![(
                "main.key".to_owned(),
                "secret".to_owned(),
                "tainted".to_owned()
            )]
        );
        // The channel is an ordinary secret; the graded datum is not.
        assert_eq!(l.secrets, vec!["main.ch".to_owned()]);
        assert_eq!(
            l.sites["main.key"].label.as_deref(),
            Some("conf:secret,integ:tainted")
        );
        assert_eq!(l.sites["main.key"].role, Role::High);
    }

    #[test]
    fn no_main_is_an_error() {
        let e = lower_src("func helper() {}").unwrap_err();
        assert!(e.message.contains("main"), "{e:?}");
    }

    /// A program of `n` sequential `if`s over a sink channel.
    fn seq_ifs(n: usize) -> String {
        let mut src = String::from("func main() {\n//nuspi::sink::{}\nout := make(chan)\n");
        for _ in 0..n {
            src.push_str("if 1 { out <- 1 } else { out <- 0 }\n");
        }
        src.push_str("out <- 2\n}\n");
        src
    }

    #[test]
    fn sequential_ifs_lower_linearly_not_exponentially() {
        // Each `if` lowers its continuation once behind a join channel,
        // so doubling the number of `if`s roughly doubles the process
        // (duplicating the tail into both branches would square it).
        let small = lower_src(&seq_ifs(9)).unwrap().process.to_string().len();
        let large = lower_src(&seq_ifs(18)).unwrap().process.to_string().len();
        assert!(
            large < small * 3,
            "18 ifs render to {large} bytes vs {small} for 9: not linear"
        );
    }

    #[test]
    fn joins_are_internal_only() {
        let l = lower_src(&seq_ifs(2)).unwrap();
        // Join channels are restricted (not free) …
        assert!(
            !l.process
                .free_names()
                .iter()
                .any(|n| n.to_string().contains("#seq")),
            "join leaked as a free name"
        );
        // … but never policy secrets and never source-mapped.
        assert!(
            l.secrets.iter().all(|s| !s.contains("#seq")),
            "{:?}",
            l.secrets
        );
        assert!(l.sites.keys().all(|k| !k.contains("#seq")));
    }

    #[test]
    fn flat_sequences_lower_without_recursion() {
        // One statement per lowering stack frame would abort on a long
        // flat program; the sequence walk is iterative, so this is just
        // a big (under-budget) process.
        let n = MAX_LOWERED_STMTS - 10;
        let mut src = String::from("func main() {\n//nuspi::sink::{}\nout := make(chan)\n");
        for _ in 0..n - 2 {
            src.push_str("out <- 0\n");
        }
        src.push_str("}\n");
        assert!(lower_src(&src).is_ok());
    }

    #[test]
    fn oversized_flat_programs_are_structured_errors() {
        let n = MAX_LOWERED_STMTS + 10;
        let mut src = String::from("func main() {\n");
        for _ in 0..n {
            src.push_str("x := 1\n");
        }
        src.push_str("}\n");
        let e = lower_src(&src).unwrap_err();
        assert!(e.message.contains("lowered statements"), "{e:?}");
    }

    #[test]
    fn doubling_call_dags_hit_the_expansion_budget() {
        // f15 calls f14 twice, … — 2^15 leaf expansions. The budget
        // turns the blow-up into a structured error instead of an
        // exponential process.
        let mut src = String::from("func f0(ch) { ch <- 0\nch <- 0 }\n");
        for i in 1..=15 {
            src.push_str(&format!(
                "func f{i}(ch) {{ f{}(ch)\nf{}(ch) }}\n",
                i - 1,
                i - 1
            ));
        }
        src.push_str("func main() { ch := make(chan)\nf15(ch) }\n");
        let e = lower_src(&src).unwrap_err();
        assert!(e.message.contains("lowered statements"), "{e:?}");
    }

    #[test]
    fn deep_inline_chains_are_structured_errors() {
        // A 100-hop call chain: no recursion, but each hop is one more
        // nested lowering frame — rejected at MAX_INLINE_DEPTH.
        let mut src = String::from("func f0(ch) { ch <- 0 }\n");
        for i in 1..=100 {
            src.push_str(&format!("func f{i}(ch) {{ f{}(ch) }}\n", i - 1));
        }
        src.push_str("func main() { ch := make(chan)\nf100(ch) }\n");
        let e = lower_src(&src).unwrap_err();
        assert!(e.message.contains("inlined deeper"), "{e:?}");
    }
}
