//! Static lowering from the surface AST into a νSPI process.
//!
//! The translation is a continuation-passing walk over statement
//! sequences:
//!
//! - `x := make(chan)` mints a νSPI name for the channel. Ordinary
//!   channels are `new`-restricted and declared policy-secret (an
//!   internal channel is not an observable); `//nuspi::sink::{}`
//!   channels stay *free* under the bare surface identifier — a free
//!   public name is exactly what the analysis treats as
//!   attacker-observable.
//! - `//nuspi::label::{high}` / `//nuspi::secret` declarations mint a
//!   restricted, policy-secret name and bind the identifier to it; the
//!   initializer (if any) is checked for undeclared variables but the
//!   annotation overrides its value.
//! - `ch <- e` / `x := <-ch` become `Output` / `Input`.
//! - `if` becomes `CaseNat` (both branches share the statement-level
//!   continuation), `for { … }` becomes a replicated body in parallel
//!   with the continuation, `go f(…)` runs the callee in parallel.
//! - Calls are inlined (the callee body is lowered at each call site
//!   with parameters bound to the lowered arguments); recursion is a
//!   structured error, so inlining terminates.
//!
//! Minted names are mangled by **declaration order** (`main.x`,
//! `main.x.2`, …), never by line/column — so a formatting-only edit
//! lowers to an α-digest-identical process, which is what the engine's
//! cache keys on. Every minted name is recorded in the [`SourceMap`].

use crate::ast::{Call, Expr, ExprKind, FuncDecl, Program, Stmt, StmtKind};
use crate::error::LangError;
use crate::srcmap::{Role, Site, SourceMap};
use crate::token::{AnnKind, Pos};
use nuspi_syntax::{builder as b, Expr as SpiExpr, Name, Process, Var};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// Numerals larger than this lower to the capped numeral: magnitude is
/// irrelevant to information flow, and unbounded `suc` chains would let
/// a literal blow up the process size.
const NUMERAL_CAP: u64 = 8;

/// The result of lowering a program.
#[derive(Debug)]
pub struct Lowered {
    /// The νSPI process.
    pub process: Process,
    /// Canonical base names that are policy-secret, sorted.
    pub secrets: Vec<String>,
    /// Declaration sites for every minted name.
    pub sites: BTreeMap<String, Site>,
}

impl Lowered {
    /// Packages the sites as a [`SourceMap`] for `file`.
    pub fn source_map(&self, file: &str) -> SourceMap {
        SourceMap {
            file: file.to_owned(),
            sites: self.sites.clone(),
        }
    }
}

/// What a surface identifier is bound to during lowering.
#[derive(Clone)]
enum Binding {
    /// A channel: a νSPI name usable as a subject of send/receive.
    Chan(Name),
    /// A value: substituted (cloned) at each use site.
    Val(SpiExpr),
    /// A process-level variable bound by an `Input`.
    BoundVar(Var),
}

/// One lexical frame: the visible bindings plus the call stack used for
/// recursion detection. Cheap to clone (the stack is shared).
#[derive(Clone)]
struct Scope {
    vars: HashMap<String, Binding>,
    func: Rc<str>,
    stack: Rc<Vec<Rc<str>>>,
}

/// The statement-level continuation: what runs after the current
/// statement sequence finishes. Each frame carries the scope the
/// remaining statements must see.
enum Cont<'a> {
    /// Nothing left: the inert process.
    Done,
    /// The remaining statements of an enclosing sequence.
    Seq {
        stmts: &'a [Stmt],
        scope: Scope,
        next: Rc<Cont<'a>>,
    },
}

struct Ctx<'a> {
    funcs: HashMap<&'a str, &'a FuncDecl>,
    /// Declaration counters keyed by `func.ident`, for stable mangling.
    counters: HashMap<String, u32>,
    /// Minted names to hoist as `new`-restrictions, in mint order.
    restricted: Vec<Name>,
    secrets: Vec<String>,
    sites: BTreeMap<String, Site>,
}

/// Lowers a parsed program. `main` is the entry point; every failure
/// (no `main`, undeclared identifiers, channel misuse, recursion,
/// arity mismatches) is a structured [`LangError`].
pub fn lower(program: &Program) -> Result<Lowered, LangError> {
    let mut funcs: HashMap<&str, &FuncDecl> = HashMap::new();
    for f in &program.funcs {
        if funcs.insert(f.name.as_str(), f).is_some() {
            return Err(LangError::new(
                f.pos,
                format!("function `{}` is declared twice", f.name),
            ));
        }
    }
    let main = *funcs
        .get("main")
        .ok_or_else(|| LangError::new(Pos::new(1, 1), "no `func main()` found".to_owned()))?;
    if !main.params.is_empty() {
        return Err(LangError::new(
            main.pos,
            "`main` takes no parameters".to_owned(),
        ));
    }
    let mut ctx = Ctx {
        funcs,
        counters: HashMap::new(),
        restricted: Vec::new(),
        secrets: Vec::new(),
        sites: BTreeMap::new(),
    };
    let name: Rc<str> = Rc::from("main");
    let scope = Scope {
        vars: HashMap::new(),
        func: name.clone(),
        stack: Rc::new(vec![name]),
    };
    let body = lower_seq(&mut ctx, &main.body.stmts, scope, Rc::new(Cont::Done))?;
    let process = b::restrict_all(ctx.restricted, body);
    let mut secrets = ctx.secrets;
    secrets.sort();
    secrets.dedup();
    Ok(Lowered {
        process,
        secrets,
        sites: ctx.sites,
    })
}

impl<'a> Ctx<'a> {
    /// Mints a restricted, policy-secret name for a declaration of
    /// `ident` in `func`, mangled by declaration order.
    fn mint(
        &mut self,
        func: &str,
        ident: &str,
        role: Role,
        label: Option<String>,
        pos: Pos,
    ) -> Name {
        let key = format!("{func}.{ident}");
        let n = self.counters.entry(key.clone()).or_insert(0);
        *n += 1;
        let base = if *n == 1 { key } else { format!("{key}.{n}") };
        let name = Name::global(base.as_str());
        self.restricted.push(name);
        self.secrets.push(base.clone());
        self.sites.insert(
            base,
            Site {
                ident: ident.to_owned(),
                role,
                label,
                line: pos.line,
                col: pos.col,
            },
        );
        name
    }

    /// A sink channel: the bare surface identifier as a *free* νSPI
    /// name. Re-declaring the same sink reuses the name (sinks are
    /// global observables); the first declaration site wins.
    fn sink(&mut self, ident: &str, pos: Pos) -> Name {
        self.sites.entry(ident.to_owned()).or_insert(Site {
            ident: ident.to_owned(),
            role: Role::Sink,
            label: None,
            line: pos.line,
            col: pos.col,
        });
        Name::global(ident)
    }
}

/// The declaration role + label a statement's annotations give it:
/// `(is_sink, origin_role, label)`.
fn classify(s: &Stmt) -> (bool, Option<Role>, Option<String>) {
    let mut sink = false;
    let mut role = None;
    let mut label = None;
    for a in &s.annotations {
        match &a.kind {
            AnnKind::Sink => sink = true,
            AnnKind::Secret => role = Some(Role::Secret),
            AnnKind::Label(l) => {
                role = Some(Role::High);
                label = Some(l.clone());
            }
        }
    }
    (sink, role, label)
}

fn lower_cont<'a>(ctx: &mut Ctx<'a>, cont: &Cont<'a>) -> Result<Process, LangError> {
    match cont {
        Cont::Done => Ok(b::nil()),
        Cont::Seq { stmts, scope, next } => lower_seq(ctx, stmts, scope.clone(), next.clone()),
    }
}

fn lower_seq<'a>(
    ctx: &mut Ctx<'a>,
    stmts: &'a [Stmt],
    mut scope: Scope,
    cont: Rc<Cont<'a>>,
) -> Result<Process, LangError> {
    let Some((s, rest)) = stmts.split_first() else {
        return lower_cont(ctx, &cont);
    };
    let (is_sink, origin, label) = classify(s);
    match &s.kind {
        StmtKind::MakeChan { name } => {
            let chan = if is_sink {
                ctx.sink(name, s.pos)
            } else {
                ctx.mint(
                    &scope.func.clone(),
                    name,
                    origin.unwrap_or(Role::Channel),
                    label,
                    s.pos,
                )
            };
            scope.vars.insert(name.clone(), Binding::Chan(chan));
            lower_seq(ctx, rest, scope, cont)
        }
        StmtKind::Let { name, value } => {
            let binding = match origin {
                Some(role) => {
                    // Check the initializer for undeclared identifiers,
                    // then let the annotation override its value.
                    check_expr(&scope, value)?;
                    let n = ctx.mint(&scope.func.clone(), name, role, label, s.pos);
                    Binding::Val(b::name_expr(n))
                }
                None => Binding::Val(lower_expr(&scope, value)?),
            };
            scope.vars.insert(name.clone(), binding);
            lower_seq(ctx, rest, scope, cont)
        }
        StmtKind::Recv {
            name,
            chan,
            chan_pos,
        } => {
            let ch = channel(&scope, chan, *chan_pos)?;
            let v = Var::fresh(name.as_str());
            let binding = match origin {
                Some(role) => {
                    let n = ctx.mint(&scope.func.clone(), name, role, label, s.pos);
                    Binding::Val(b::name_expr(n))
                }
                None => Binding::BoundVar(v),
            };
            scope.vars.insert(name.clone(), binding);
            let then = lower_seq(ctx, rest, scope, cont)?;
            Ok(b::input(b::name_expr(ch), v, then))
        }
        StmtKind::Send {
            chan,
            chan_pos,
            value,
        } => {
            let ch = channel(&scope, chan, *chan_pos)?;
            let msg = lower_expr(&scope, value)?;
            let then = lower_seq(ctx, rest, scope, cont)?;
            Ok(b::output(b::name_expr(ch), msg, then))
        }
        StmtKind::If { cond, then, els } => {
            let c = lower_expr(&scope, cond)?;
            let rest_cont = Rc::new(Cont::Seq {
                stmts: rest,
                scope: scope.clone(),
                next: cont,
            });
            let then_p = lower_seq(ctx, &then.stmts, scope.clone(), rest_cont.clone())?;
            let else_p = match els {
                Some(e) => lower_seq(ctx, &e.stmts, scope, rest_cont)?,
                None => lower_cont(ctx, &rest_cont)?,
            };
            Ok(b::case_nat(c, else_p, Var::fresh("_pred"), then_p))
        }
        StmtKind::Loop { body } => {
            let body_p = lower_seq(ctx, &body.stmts, scope.clone(), Rc::new(Cont::Done))?;
            let rest_p = lower_seq(ctx, rest, scope, cont)?;
            Ok(b::par(b::replicate(body_p), rest_p))
        }
        StmtKind::Go { call } => {
            let spawned = lower_call(ctx, call, &scope, Rc::new(Cont::Done))?;
            let rest_p = lower_seq(ctx, rest, scope, cont)?;
            Ok(b::par(spawned, rest_p))
        }
        StmtKind::Call(call) => {
            let after = Rc::new(Cont::Seq {
                stmts: rest,
                scope: scope.clone(),
                next: cont,
            });
            lower_call(ctx, call, &scope, after)
        }
    }
}

fn lower_call<'a>(
    ctx: &mut Ctx<'a>,
    call: &'a Call,
    caller: &Scope,
    cont: Rc<Cont<'a>>,
) -> Result<Process, LangError> {
    let callee = *ctx.funcs.get(call.func.as_str()).ok_or_else(|| {
        LangError::new(
            call.pos,
            format!("call to undefined function `{}`", call.func),
        )
    })?;
    if caller.stack.iter().any(|f| f.as_ref() == call.func) {
        return Err(LangError::new(
            call.pos,
            format!(
                "recursive call to `{}` (calls are inlined; recursion is not supported)",
                call.func
            ),
        ));
    }
    if call.args.len() != callee.params.len() {
        return Err(LangError::new(
            call.pos,
            format!(
                "`{}` takes {} argument(s), {} given",
                call.func,
                callee.params.len(),
                call.args.len()
            ),
        ));
    }
    let mut vars = HashMap::new();
    for ((param, _), arg) in callee.params.iter().zip(&call.args) {
        // A bare identifier argument passes its binding through, so a
        // channel stays a channel in the callee.
        let binding = match &arg.kind {
            ExprKind::Var(x) => match caller.vars.get(x) {
                Some(binding) => binding.clone(),
                None => {
                    return Err(LangError::new(
                        arg.pos,
                        format!("undeclared identifier `{x}`"),
                    ))
                }
            },
            _ => Binding::Val(lower_expr(caller, arg)?),
        };
        vars.insert(param.clone(), binding);
    }
    let fname: Rc<str> = Rc::from(call.func.as_str());
    let mut stack = caller.stack.as_ref().clone();
    stack.push(fname.clone());
    let callee_scope = Scope {
        vars,
        func: fname,
        stack: Rc::new(stack),
    };
    lower_seq(ctx, &callee.body.stmts, callee_scope, cont)
}

/// Resolves `ident` to a channel name, or errors.
fn channel(scope: &Scope, ident: &str, pos: Pos) -> Result<Name, LangError> {
    match scope.vars.get(ident) {
        Some(Binding::Chan(n)) => Ok(*n),
        Some(_) => Err(LangError::new(
            pos,
            format!("`{ident}` is not a channel (declared without `make(chan)`)"),
        )),
        None => Err(LangError::new(pos, format!("undeclared channel `{ident}`"))),
    }
}

fn lower_expr(scope: &Scope, e: &Expr) -> Result<SpiExpr, LangError> {
    match &e.kind {
        ExprKind::Var(x) => match scope.vars.get(x) {
            Some(Binding::Chan(n)) => Ok(b::name_expr(*n)),
            Some(Binding::Val(v)) => Ok(v.clone()),
            Some(Binding::BoundVar(v)) => Ok(b::var(*v)),
            None => Err(LangError::new(
                e.pos,
                format!("undeclared identifier `{x}`"),
            )),
        },
        ExprKind::Int(n) => Ok(b::numeral(n.min(&NUMERAL_CAP).to_owned() as u32)),
        // Strings are opaque public data: magnitude-free, label-free.
        ExprKind::Str(_) => Ok(b::numeral(0)),
        // `+` joins taint conservatively: a pair carries both operands.
        ExprKind::Add(a, c) => Ok(b::pair(lower_expr(scope, a)?, lower_expr(scope, c)?)),
    }
}

/// Validates identifiers in an expression without lowering it (used for
/// the ignored initializer of an annotated declaration).
fn check_expr(scope: &Scope, e: &Expr) -> Result<(), LangError> {
    match &e.kind {
        ExprKind::Var(x) => {
            if scope.vars.contains_key(x) {
                Ok(())
            } else {
                Err(LangError::new(
                    e.pos,
                    format!("undeclared identifier `{x}`"),
                ))
            }
        }
        ExprKind::Int(_) | ExprKind::Str(_) => Ok(()),
        ExprKind::Add(a, c) => {
            check_expr(scope, a)?;
            check_expr(scope, c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use nuspi_syntax::canonical_digest;

    fn lower_src(src: &str) -> Result<Lowered, LangError> {
        lower(&parse(src).expect("parse"))
    }

    #[test]
    fn channels_are_restricted_and_secret_sinks_are_free() {
        let l = lower_src(
            "func main() {\n\
             //nuspi::sink::{}\n\
             out := make(chan)\n\
             ch := make(chan)\n\
             ch <- 1\n\
             out <- 2\n\
             }",
        )
        .unwrap();
        assert_eq!(l.secrets, vec!["main.ch".to_owned()]);
        assert!(l.sites.contains_key("out"));
        assert_eq!(l.sites["out"].role, Role::Sink);
        assert_eq!(l.sites["main.ch"].role, Role::Channel);
        // `out` is free, `main.ch` is not.
        let free: Vec<String> = l
            .process
            .free_names()
            .iter()
            .map(|n| n.to_string())
            .collect();
        assert!(free.contains(&"out".to_owned()), "{free:?}");
        assert!(!free.iter().any(|n| n.contains("main.ch")), "{free:?}");
    }

    #[test]
    fn redeclaration_mangles_by_declaration_order() {
        let l = lower_src(
            "func main() {\nch := make(chan)\nif 1 { ch := make(chan)\nch <- 1 } else {}\nch <- 0\n}",
        )
        .unwrap();
        assert_eq!(
            l.secrets,
            vec!["main.ch".to_owned(), "main.ch.2".to_owned()]
        );
    }

    #[test]
    fn reformatting_preserves_the_canonical_digest() {
        let a = lower_src("func main() {\nch := make(chan)\nch <- 1 + 2\n}").unwrap();
        let b_ = lower_src(
            "// a comment\nfunc main()   {\n\n\n    ch := make(chan)\n    ch <- 1 + 2\n\n}\n",
        )
        .unwrap();
        assert_eq!(
            canonical_digest(&a.process).0,
            canonical_digest(&b_.process).0
        );
    }

    #[test]
    fn recursion_and_unknown_calls_are_errors() {
        let e = lower_src("func f() { f() }\nfunc main() { f() }").unwrap_err();
        assert!(e.message.contains("recursive"), "{e:?}");
        let e = lower_src("func main() { g() }").unwrap_err();
        assert!(e.message.contains("undefined function"), "{e:?}");
        let e = lower_src("func f(a) {}\nfunc main() { f() }").unwrap_err();
        assert!(e.message.contains("argument"), "{e:?}");
    }

    #[test]
    fn sequential_calls_are_not_recursion() {
        let l =
            lower_src("func f(ch) { ch <- 1 }\nfunc main() {\nch := make(chan)\nf(ch)\nf(ch)\n}");
        assert!(l.is_ok(), "{:?}", l.err());
    }

    #[test]
    fn channel_misuse_is_an_error() {
        let e = lower_src("func main() {\nx := 1\nx <- 2\n}").unwrap_err();
        assert!(e.message.contains("not a channel"), "{e:?}");
        let e = lower_src("func main() {\ny := <-nope\n}").unwrap_err();
        assert!(e.message.contains("undeclared channel"), "{e:?}");
    }

    #[test]
    fn annotated_declarations_mint_secret_names() {
        let l = lower_src(
            "func main() {\n\
             //nuspi::label::{high}\n\
             pin := 1234\n\
             //nuspi::secret\n\
             key := 0\n\
             ch := make(chan)\n\
             ch <- pin + key\n\
             }",
        )
        .unwrap();
        assert_eq!(l.sites["main.pin"].role, Role::High);
        assert_eq!(l.sites["main.pin"].label.as_deref(), Some("high"));
        assert_eq!(l.sites["main.key"].role, Role::Secret);
        assert!(l.secrets.contains(&"main.pin".to_owned()));
        assert!(l.secrets.contains(&"main.key".to_owned()));
    }

    #[test]
    fn no_main_is_an_error() {
        let e = lower_src("func helper() {}").unwrap_err();
        assert!(e.message.contains("main"), "{e:?}");
    }
}
