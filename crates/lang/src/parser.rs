//! The recursive-descent parser, plus the line-based annotation
//! attachment pass.
//!
//! The parser is total on arbitrary input: every failure is a
//! structured [`LangError`] with the offending position, and a nesting
//! depth limit turns adversarially deep blocks/expressions into errors
//! instead of stack overflows.
//!
//! Annotation attachment is a separate pass over the parsed tree:
//! an annotation attaches to the statement whose source extent covers
//! its line (a trailing annotation), or else to the next statement
//! starting below it — blank lines and ordinary comments in between
//! are fine. An annotation that lands on nothing, or on a statement
//! that declares nothing, is an error: a stray annotation silently
//! doing nothing would weaken the policy.

use crate::ast::{Block, Call, Expr, ExprKind, FuncDecl, Program, Stmt, StmtKind};
use crate::error::LangError;
use crate::token::{lex, AnnKind, Annotation, Pos, TokKind, Token};

/// Maximum block/expression nesting depth; beyond it the parser reports
/// a structured error instead of risking the stack.
const MAX_DEPTH: usize = 64;

/// Parses `src` into a [`Program`] with annotations attached.
pub fn parse(src: &str) -> Result<Program, LangError> {
    let lexed = lex(src)?;
    let mut p = Parser {
        tokens: lexed.tokens,
        at: 0,
        depth: 0,
    };
    let mut funcs = Vec::new();
    while !p.done() {
        funcs.push(p.func_decl()?);
    }
    let mut program = Program { funcs };
    attach_annotations(&mut program, lexed.annotations)?;
    Ok(program)
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
    depth: usize,
}

impl Parser {
    fn done(&self) -> bool {
        self.at >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.at)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.at + 1)
    }

    /// Position for "unexpected end of input" errors: just past the
    /// last token, or 1:1 for an empty file.
    fn eof_pos(&self) -> Pos {
        self.tokens
            .last()
            .map_or(Pos::new(1, 1), |t| Pos::new(t.pos.line, t.pos.col + 1))
    }

    fn next(&mut self, what: &str) -> Result<Token, LangError> {
        let t = self.tokens.get(self.at).cloned().ok_or_else(|| {
            LangError::new(
                self.eof_pos(),
                format!("expected {what}, found end of input"),
            )
        })?;
        self.at += 1;
        Ok(t)
    }

    fn expect(&mut self, kind: &TokKind, what: &str) -> Result<Token, LangError> {
        let t = self.next(what)?;
        if &t.kind == kind {
            Ok(t)
        } else {
            Err(LangError::new(
                t.pos,
                format!("expected {what}, found {}", t.kind.describe()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), LangError> {
        let t = self.next(what)?;
        match t.kind {
            TokKind::Ident(s) => Ok((s, t.pos)),
            other => Err(LangError::new(
                t.pos,
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    fn enter(&mut self, pos: Pos) -> Result<(), LangError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(LangError::new(
                pos,
                format!("nesting deeper than {MAX_DEPTH} levels"),
            ));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn func_decl(&mut self) -> Result<FuncDecl, LangError> {
        let t = self.next("`func`")?;
        match &t.kind {
            TokKind::Ident(kw) if kw == "func" => {}
            other => {
                return Err(LangError::new(
                    t.pos,
                    format!("expected `func` at top level, found {}", other.describe()),
                ))
            }
        }
        let (name, pos) = self.ident("function name")?;
        if is_keyword(&name) {
            return Err(LangError::new(
                pos,
                format!("`{name}` is a keyword and cannot name a function"),
            ));
        }
        self.expect(&TokKind::LParen, "`(` after function name")?;
        let mut params = Vec::new();
        if self.peek().map(|t| &t.kind) != Some(&TokKind::RParen) {
            loop {
                let (p, ppos) = self.ident("parameter name")?;
                if params.iter().any(|(q, _)| q == &p) {
                    return Err(LangError::new(ppos, format!("duplicate parameter `{p}`")));
                }
                params.push((p, ppos));
                match self.peek().map(|t| &t.kind) {
                    Some(TokKind::Comma) => {
                        self.at += 1;
                    }
                    _ => break,
                }
            }
        }
        self.expect(&TokKind::RParen, "`)` after parameters")?;
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            pos,
            params,
            body,
        })
    }

    fn block(&mut self) -> Result<Block, LangError> {
        let open = self.expect(&TokKind::LBrace, "`{`")?;
        self.enter(open.pos)?;
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                None => {
                    return Err(LangError::new(
                        self.eof_pos(),
                        "unclosed `{` (expected `}` before end of input)".to_owned(),
                    ))
                }
                Some(t) if t.kind == TokKind::RBrace => {
                    self.at += 1;
                    break;
                }
                Some(_) => stmts.push(self.stmt()?),
            }
        }
        self.leave();
        Ok(Block { stmts })
    }

    /// Line the previous token (the statement's last) starts on.
    fn prev_line(&self) -> u32 {
        self.tokens[self.at - 1].pos.line
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let t = self.next("a statement")?;
        let pos = t.pos;
        let kind = match &t.kind {
            TokKind::Ident(kw) if kw == "if" => {
                let cond = self.expr()?;
                let then = self.block()?;
                let els = match self.peek().map(|t| &t.kind) {
                    Some(TokKind::Ident(k)) if k == "else" => {
                        self.at += 1;
                        Some(self.block()?)
                    }
                    _ => None,
                };
                StmtKind::If { cond, then, els }
            }
            TokKind::Ident(kw) if kw == "for" => StmtKind::Loop {
                body: self.block()?,
            },
            TokKind::Ident(kw) if kw == "go" => {
                let (func, fpos) = self.ident("function name after `go`")?;
                let args = self.call_args()?;
                StmtKind::Go {
                    call: Call {
                        func,
                        pos: fpos,
                        args,
                    },
                }
            }
            TokKind::Ident(name) if !is_keyword(name) => {
                let name = name.clone();
                match self.peek().map(|t| &t.kind) {
                    Some(TokKind::Define) => {
                        self.at += 1;
                        match (self.peek().map(|t| &t.kind), self.peek2().map(|t| &t.kind)) {
                            // x := make(chan)
                            (Some(TokKind::Ident(k)), Some(TokKind::LParen)) if k == "make" => {
                                self.at += 1;
                                self.expect(&TokKind::LParen, "`(` after `make`")?;
                                let (what, wpos) = self.ident("`chan`")?;
                                if what != "chan" {
                                    return Err(LangError::new(
                                        wpos,
                                        format!("`make` can only make `chan`, found `{what}`"),
                                    ));
                                }
                                self.expect(&TokKind::RParen, "`)` after `chan`")?;
                                StmtKind::MakeChan { name }
                            }
                            // x := <-ch
                            (Some(TokKind::Arrow), _) => {
                                self.at += 1;
                                let (chan, chan_pos) = self.ident("channel name after `<-`")?;
                                StmtKind::Recv {
                                    name,
                                    chan,
                                    chan_pos,
                                }
                            }
                            // x := expr
                            _ => StmtKind::Let {
                                name,
                                value: self.expr()?,
                            },
                        }
                    }
                    Some(TokKind::Arrow) => {
                        self.at += 1;
                        StmtKind::Send {
                            chan: name,
                            chan_pos: pos,
                            value: self.expr()?,
                        }
                    }
                    Some(TokKind::LParen) => {
                        let args = self.call_args()?;
                        StmtKind::Call(Call {
                            func: name,
                            pos,
                            args,
                        })
                    }
                    _ => {
                        return Err(LangError::new(
                            pos,
                            format!(
                            "`{name}` starts no statement (expected `:=`, `<-`, or `(` after it)"
                        ),
                        ))
                    }
                }
            }
            other => {
                return Err(LangError::new(
                    pos,
                    format!("expected a statement, found {}", other.describe()),
                ))
            }
        };
        Ok(Stmt {
            kind,
            pos,
            end_line: self.prev_line(),
            annotations: Vec::new(),
        })
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, LangError> {
        self.expect(&TokKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek().map(|t| &t.kind) != Some(&TokKind::RParen) {
            loop {
                args.push(self.expr()?);
                match self.peek().map(|t| &t.kind) {
                    Some(TokKind::Comma) => {
                        self.at += 1;
                    }
                    _ => break,
                }
            }
        }
        self.expect(&TokKind::RParen, "`)` after arguments")?;
        Ok(args)
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.term()?;
        while self.peek().map(|t| &t.kind) == Some(&TokKind::Plus) {
            self.at += 1;
            let rhs = self.term()?;
            let pos = lhs.pos;
            lhs = Expr {
                kind: ExprKind::Add(Box::new(lhs), Box::new(rhs)),
                pos,
            };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, LangError> {
        let t = self.next("an expression")?;
        let pos = t.pos;
        match t.kind {
            TokKind::Ident(s) if !is_keyword(&s) => Ok(Expr {
                kind: ExprKind::Var(s),
                pos,
            }),
            TokKind::Int(n) => Ok(Expr {
                kind: ExprKind::Int(n),
                pos,
            }),
            TokKind::Str(s) => Ok(Expr {
                kind: ExprKind::Str(s),
                pos,
            }),
            TokKind::LParen => {
                self.enter(pos)?;
                let e = self.expr()?;
                self.expect(&TokKind::RParen, "`)`")?;
                self.leave();
                Ok(e)
            }
            other => Err(LangError::new(
                pos,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(s, "func" | "if" | "else" | "for" | "go" | "make" | "chan")
}

/// A statement's source extent, as recorded by the immutable scan phase
/// of annotation attachment.
struct StmtExtent {
    pos: Pos,
    end_line: u32,
}

/// Attaches each annotation to its statement (see module docs for the
/// line rule). Only declaring statements (`:=` forms) accept
/// annotations; `sink` additionally requires a channel declaration.
///
/// Two phases: an immutable scan picks each annotation's target by its
/// (unique) starting position, then a mutable walk pushes the
/// annotation onto that statement.
fn attach_annotations(
    program: &mut Program,
    annotations: Vec<Annotation>,
) -> Result<(), LangError> {
    if annotations.is_empty() {
        return Ok(());
    }
    let mut extents = Vec::new();
    for f in &program.funcs {
        scan_block(&f.body, &mut extents);
    }
    extents.sort_by_key(|e| (e.pos.line, e.pos.col));
    for ann in annotations {
        let target_pos = find_target(&extents, &ann).ok_or_else(|| {
            LangError::new(
                ann.pos,
                "annotation attaches to no statement (nothing declared at or below it)".to_owned(),
            )
        })?;
        let target = program
            .funcs
            .iter_mut()
            .find_map(|f| stmt_at(&mut f.body, target_pos))
            .expect("scanned statement exists");
        let ok = match (&ann.kind, &target.kind) {
            (AnnKind::Sink, StmtKind::MakeChan { .. }) => true,
            (AnnKind::Sink, _) => {
                return Err(LangError::new(
                    ann.pos,
                    "`sink` annotates channels; attach it to an `x := make(chan)` declaration"
                        .to_owned(),
                ))
            }
            (
                AnnKind::Label(_) | AnnKind::Graded { .. } | AnnKind::Secret | AnnKind::Hide,
                StmtKind::Let { .. } | StmtKind::MakeChan { .. } | StmtKind::Recv { .. },
            ) => true,
            _ => false,
        };
        if !ok {
            return Err(LangError::new(
                ann.pos,
                "annotation must attach to a declaration (`x := …`)".to_owned(),
            ));
        }
        target.annotations.push(ann);
    }
    Ok(())
}

/// The statement an annotation at `ann.pos` attaches to: the
/// latest-starting statement whose extent covers the annotation's line
/// without starting after it (trailing), else the first statement
/// starting strictly below it. Returns the target's starting position.
fn find_target(extents: &[StmtExtent], ann: &Annotation) -> Option<Pos> {
    let line = ann.pos.line;
    let mut trailing: Option<Pos> = None;
    let mut below: Option<Pos> = None;
    for e in extents {
        let starts_after_ann = e.pos.line == line && e.pos.col > ann.pos.col;
        if e.pos.line <= line && e.end_line >= line && !starts_after_ann {
            trailing = Some(e.pos); // extents are sorted: keeps the latest-starting
        }
        if below.is_none() && e.pos.line > line {
            below = Some(e.pos);
        }
    }
    trailing.or(below)
}

fn scan_block(block: &Block, out: &mut Vec<StmtExtent>) {
    for s in &block.stmts {
        out.push(StmtExtent {
            pos: s.pos,
            end_line: s.end_line,
        });
        match &s.kind {
            StmtKind::If { then, els, .. } => {
                scan_block(then, out);
                if let Some(e) = els {
                    scan_block(e, out);
                }
            }
            StmtKind::Loop { body } => scan_block(body, out),
            _ => {}
        }
    }
}

/// Finds the statement starting at exactly `pos` (statement start
/// positions are unique: each starts at a distinct token).
fn stmt_at(block: &mut Block, pos: Pos) -> Option<&mut Stmt> {
    for s in &mut block.stmts {
        if s.pos == pos {
            return Some(s);
        }
        let found = match &mut s.kind {
            StmtKind::If { then, els, .. } => {
                stmt_at(then, pos).or_else(|| els.as_mut().and_then(|e| stmt_at(e, pos)))
            }
            StmtKind::Loop { body } => stmt_at(body, pos),
            _ => None,
        };
        if found.is_some() {
            return found;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_main(body: &str) -> Result<Program, LangError> {
        parse(&format!("func main() {{\n{body}\n}}\n"))
    }

    #[test]
    fn parses_the_statement_forms() {
        let p = parse_main(
            "ch := make(chan)\nx := 1 + 2\ny := <-ch\nch <- y\n\
             if x { ch <- 1 } else { ch <- 0 }\nfor { ch <- 2 }\ngo f(x)\nf(x)",
        );
        // `f` undefined is a lowering error, not a parse error.
        let p = p.unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].body.stmts.len(), 8);
    }

    #[test]
    fn attaches_preceding_and_trailing_annotations() {
        let p = parse(
            "func main() {\n\
             //nuspi::sink::{}\n\
             out := make(chan)\n\
             \n\
             //nuspi::label::{high}\n\
             x := 1\n\
             y := 2 //nuspi::secret\n\
             out <- y\n\
             }",
        )
        .unwrap();
        let stmts = &p.funcs[0].body.stmts;
        assert_eq!(stmts[0].annotations.len(), 1, "{stmts:?}");
        assert!(matches!(stmts[0].annotations[0].kind, AnnKind::Sink));
        assert!(matches!(stmts[1].annotations[0].kind, AnnKind::Label(_)));
        assert!(matches!(stmts[2].annotations[0].kind, AnnKind::Secret));
        assert!(stmts[3].annotations.is_empty());
    }

    #[test]
    fn rejects_misplaced_annotations() {
        // sink on a value binding
        let e = parse("func main() {\n//nuspi::sink::{}\nx := 1\n}").unwrap_err();
        assert!(e.message.contains("sink"), "{e:?}");
        // annotation on a send
        let ch = "func main() {\nch := make(chan)\n//nuspi::secret\nch <- 1\n}";
        let e = parse(ch).unwrap_err();
        assert!(e.message.contains("declaration"), "{e:?}");
        // annotation at end of file
        let e = parse("func main() {\nx := 1\n}\n//nuspi::secret\n").unwrap_err();
        assert!(e.message.contains("attaches to no statement"), "{e:?}");
    }

    #[test]
    fn depth_limit_is_an_error_not_a_crash() {
        let mut src = String::from("func main() ");
        for _ in 0..200 {
            src.push_str("{ for ");
        }
        src.push('{');
        let e = parse(&src).unwrap_err();
        assert!(e.message.contains("nesting deeper"), "{e:?}");

        let deep = format!(
            "func main() {{ x := {}1{} }}",
            "(".repeat(200),
            ")".repeat(200)
        );
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting deeper"), "{e:?}");
    }

    #[test]
    fn empty_file_parses_to_zero_functions() {
        assert_eq!(parse("").unwrap().funcs.len(), 0);
        assert_eq!(parse("  \n// just a comment\n").unwrap().funcs.len(), 0);
    }

    #[test]
    fn error_positions_are_precise() {
        let e = parse("func main() {\n  x = 1\n}").unwrap_err();
        assert_eq!((e.pos.line, e.pos.col), (2, 5));
    }
}
