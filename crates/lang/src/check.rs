//! The end-to-end driver: compile annotated source, run the νSPI
//! analysis pipeline, and anchor every verdict back to the surface
//! program.
//!
//! [`compile`] goes source → process + policy + [`SourceMap`];
//! [`check_with`] runs the full lint pipeline over the result and
//! resolves each diagnostic's witness against the source map, producing
//! [`SourcedDiagnostic`]s whose *origin* (the labeled/secret
//! declaration the leaked datum came from) and *sink* (the
//! `//nuspi::sink::{}` channel it reaches) carry `file:line:col`
//! anchors. When both ends are known the message is rewritten in
//! surface terms: "value labeled `high` at examples/lang/leak.nu:7:3
//! reaches sink `pub_out` declared at examples/lang/leak.nu:3:3".
//!
//! Rendering follows the repo conventions: a rustc-style text report
//! and a byte-stable JSON document (pretty and single-line compact
//! forms differing only in whitespace). Reports are byte-identical
//! across runs and solver shard counts, because the underlying lint is.

use crate::error::LangError;
use crate::lower::lower;
use crate::parser::parse;
use crate::srcmap::{Role, SourceMap};
use nuspi_diagnostics::{lint_with, Diagnostic, LintConfig, Severity, Span};
use nuspi_security::{Policy, SecLattice};
use nuspi_syntax::Process;
use std::fmt::Write as _;

/// A compiled program: the lowered process, the derived policy, and the
/// map from minted names back to source declarations.
pub struct Compiled {
    /// The lowered νSPI process.
    pub process: Process,
    /// The derived secrecy policy (every internal channel and annotated
    /// datum is secret; sinks are public free names).
    pub policy: Policy,
    /// Minted-name → declaration-site map.
    pub map: SourceMap,
    /// The policy's secret bases, sorted (stable input for cache keys).
    pub secrets: Vec<String>,
    /// Statements the lowering expanded — an upper bound on the
    /// process's size and depth.
    pub stmts: usize,
}

/// Compiles `src` (from `file`, used only for anchors) down to a
/// process, policy, and source map. The first frontend failure is
/// returned as a structured [`LangError`].
pub fn compile(file: &str, src: &str) -> Result<Compiled, LangError> {
    let program = parse(src)?;
    let lowered = lower(&program)?;
    // A binary-lattice policy unless some declaration carries a graded
    // label; then the policy moves to the 4-point diamond and the graded
    // names get explicit levels (the lexer validated every label).
    let policy = if lowered.graded.is_empty() {
        Policy::with_secrets(lowered.secrets.iter().map(String::as_str))
    } else {
        let lat = SecLattice::diamond4();
        let mut p = Policy::with_lattice(lat.clone());
        for s in &lowered.secrets {
            p.add_secret(s.as_str());
        }
        for (base, conf, integ) in &lowered.graded {
            let level = lat
                .level(conf, integ)
                .expect("graded labels are validated by the lexer");
            p.grade(base.as_str(), level);
        }
        p
    };
    let map = lowered.source_map(file);
    Ok(Compiled {
        process: lowered.process,
        policy,
        map,
        secrets: lowered.secrets,
        stmts: lowered.stmts,
    })
}

/// The overall verdict of a check run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The program compiled and no analysis pass reported an error.
    Secure,
    /// The program compiled but at least one security error was found.
    Insecure,
    /// The program did not compile (lex/parse/annotation/lowering).
    Invalid,
}

impl Verdict {
    /// Stable lowercase name, used by both render backends.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Secure => "secure",
            Verdict::Insecure => "insecure",
            Verdict::Invalid => "invalid",
        }
    }
}

/// A source anchor: a minted νSPI name resolved to its declaration.
#[derive(Clone, Debug)]
pub struct Anchor {
    /// The canonical νSPI base name.
    pub name: String,
    /// The surface identifier as written.
    pub ident: String,
    /// What the declaration is.
    pub role: Role,
    /// The declared security label, if any.
    pub label: Option<String>,
    /// 1-based declaration line.
    pub line: u32,
    /// 1-based declaration column.
    pub col: u32,
}

/// One analysis diagnostic with its source anchors and the
/// surface-level message derived from them.
#[derive(Clone, Debug)]
pub struct SourcedDiagnostic {
    /// The underlying diagnostic (νSPI-level span and witness).
    pub diag: Diagnostic,
    /// The labeled/secret declaration the flowing datum came from, when
    /// the witness names one.
    pub origin: Option<Anchor>,
    /// The sink channel the diagnostic is about, when its span is one.
    pub sink: Option<Anchor>,
    /// The surface-level message: rewritten in `file:line:col` terms
    /// when both ends are anchored, the νSPI-level message otherwise.
    pub message: String,
}

/// A full check run over one file.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The file checked (as given).
    pub file: String,
    /// The overall verdict.
    pub verdict: Verdict,
    /// The diagnostics, in the stable report order.
    pub diags: Vec<SourcedDiagnostic>,
}

/// [`check_with`] with a sequential (1-shard) solver.
pub fn check(file: &str, src: &str) -> CheckReport {
    check_with(file, src, 1)
}

/// Programs whose lowering expanded more statements than this are
/// analysed on a dedicated wide-stack thread: the lint passes recurse
/// over the term, a deep term can outgrow the caller's stack, and a
/// stack overflow is an abort no `catch_unwind` contains.
const WIDE_STACK_STMTS: usize = 128;

/// Stack size for that thread — sized for the deepest process the
/// lowering budget admits, with generous debug-build headroom.
const WIDE_STACK_BYTES: usize = 64 * 1024 * 1024;

/// Compiles and analyses `src`, anchoring every diagnostic to source.
/// Reports are byte-identical for any `shards >= 1`.
pub fn check_with(file: &str, src: &str, shards: usize) -> CheckReport {
    let compiled = match compile(file, src) {
        Ok(c) => c,
        Err(e) => {
            let message = format!("{}:{}: {}", file, e.pos, e.message);
            return CheckReport {
                file: file.to_owned(),
                verdict: Verdict::Invalid,
                diags: vec![SourcedDiagnostic {
                    diag: e.to_diagnostic(),
                    origin: None,
                    sink: None,
                    message,
                }],
            };
        }
    };
    if compiled.stmts <= WIDE_STACK_STMTS {
        return check_compiled(file, &compiled, shards);
    }
    // The lowered process is `Rc`-shared and not `Send`, so the wide
    // thread recompiles from source; `compile` itself is iterative over
    // statements and parse depth is capped, so the first compile above
    // was safe on any stack.
    let owned_file = file.to_owned();
    let owned_src = src.to_owned();
    let handle = std::thread::Builder::new()
        .name("nuspi-lang-check".to_owned())
        .stack_size(WIDE_STACK_BYTES)
        .spawn(move || {
            let compiled =
                compile(&owned_file, &owned_src).expect("source compiled on the calling thread");
            check_compiled(&owned_file, &compiled, shards)
        })
        .expect("spawn wide-stack check thread");
    match handle.join() {
        Ok(report) => report,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// The analysis half of [`check_with`]: lint the compiled program and
/// anchor every diagnostic.
fn check_compiled(file: &str, compiled: &Compiled, shards: usize) -> CheckReport {
    let diags = lint_with(
        &compiled.process,
        &compiled.policy,
        LintConfig {
            shards: shards.max(1),
            ..LintConfig::default()
        },
    );
    let insecure = diags.iter().any(|d| d.severity == Severity::Error);
    let diags = diags
        .into_iter()
        .map(|d| anchor_diagnostic(&compiled.map, file, d))
        .collect();
    CheckReport {
        file: file.to_owned(),
        verdict: if insecure {
            Verdict::Insecure
        } else {
            Verdict::Secure
        },
        diags,
    }
}

fn site_anchor(map: &SourceMap, base: &str) -> Option<Anchor> {
    map.site(base).map(|s| Anchor {
        name: base.to_owned(),
        ident: s.ident.clone(),
        role: s.role,
        label: s.label.clone(),
        line: s.line,
        col: s.col,
    })
}

/// Resolves a diagnostic's two ends against the source map and derives
/// the surface-level message.
fn anchor_diagnostic(map: &SourceMap, file: &str, diag: Diagnostic) -> SourcedDiagnostic {
    let sink = match &diag.span {
        Span::Channel(sym) => site_anchor(map, sym.as_str()).filter(|a| a.role == Role::Sink),
        _ => None,
    };
    let origin = find_origin(map, &diag);
    let message = match (&origin, &sink) {
        (Some(o), Some(s)) => match o.role {
            Role::High => format!(
                "value labeled `{}` at {file}:{}:{} reaches sink `{}` declared at {file}:{}:{}",
                o.label.as_deref().unwrap_or("high"),
                o.line,
                o.col,
                s.ident,
                s.line,
                s.col
            ),
            _ => format!(
                "secret `{}` declared at {file}:{}:{} reaches sink `{}` declared at {file}:{}:{}",
                o.ident, o.line, o.col, s.ident, s.line, s.col
            ),
        },
        _ => diag.message.clone(),
    };
    SourcedDiagnostic {
        diag,
        origin,
        sink,
        message,
    }
}

/// Scans the diagnostic's message and witness details, in order, for
/// the first token naming a labeled/secret declaration site.
fn find_origin(map: &SourceMap, diag: &Diagnostic) -> Option<Anchor> {
    let texts = std::iter::once(diag.message.as_str())
        .chain(diag.witness.iter().map(|w| w.detail.as_str()));
    for text in texts {
        for tok in tokens(text) {
            if let Some(site) = map.site(tok) {
                if site.role.is_origin() {
                    return site_anchor(map, tok);
                }
            }
        }
    }
    None
}

/// Candidate name tokens of a witness detail: maximal runs of
/// identifier characters and dots (mangled bases are `func.ident[.n]`),
/// with sentence punctuation trimmed.
fn tokens(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
        .map(|t| t.trim_matches('.'))
        .filter(|t| !t.is_empty())
}

/// Renders one sourced diagnostic in the rustc-inspired layout, with
/// `file:line:col` arrows and origin/sink notes when anchored.
pub fn render_sourced(file: &str, d: &SourcedDiagnostic) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", d.diag.severity, d.diag.code, d.message);
    let arrow = match (&d.origin, &d.diag.span) {
        (Some(o), _) => format!("{file}:{}:{}", o.line, o.col),
        (None, Span::Source { line, col }) => format!("{file}:{line}:{col}"),
        (None, span) => span.to_string(),
    };
    let _ = writeln!(out, "  --> {} (pass: {})", arrow, d.diag.pass);
    if let Some(o) = &d.origin {
        let what = match o.role {
            Role::High => format!("labeled `{}`", o.label.as_deref().unwrap_or("high")),
            _ => "declared secret".to_owned(),
        };
        let _ = writeln!(
            out,
            "  = origin: `{}` {what} at {file}:{}:{} (lowered to `{}`)",
            o.ident, o.line, o.col, o.name
        );
    }
    if let Some(s) = &d.sink {
        let _ = writeln!(
            out,
            "  = sink: channel `{}` declared at {file}:{}:{}",
            s.ident, s.line, s.col
        );
    }
    for (i, step) in d.diag.witness.iter().enumerate() {
        let _ = writeln!(out, "   {}. {}: {}", i + 1, step.rule, step.detail);
    }
    out
}

/// Renders a full check report: every diagnostic, then a verdict line.
pub fn render_check(report: &CheckReport) -> String {
    let mut out = String::new();
    for d in &report.diags {
        out.push_str(&render_sourced(&report.file, d));
        out.push('\n');
    }
    let (e, w, n) = tally(report);
    let _ = writeln!(
        out,
        "check finished: {}: {} ({e} error(s), {w} warning(s), {n} note(s))",
        report.file,
        report.verdict.as_str()
    );
    out
}

fn tally(report: &CheckReport) -> (usize, usize, usize) {
    let count = |s: Severity| report.diags.iter().filter(|d| d.diag.severity == s).count();
    (
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Note),
    )
}

/// Escapes a string for a JSON string literal (same rules as the
/// diagnostics serializer; the helper there is crate-private).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn anchor_json(a: &Anchor, with_role: bool) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ident\":\"{}\",",
        escape(&a.name),
        escape(&a.ident)
    );
    if with_role {
        let _ = write!(out, "\"role\":\"{}\",", a.role.as_str());
        if let Some(l) = &a.label {
            let _ = write!(out, "\"label\":\"{}\",", escape(l));
        }
    }
    let _ = write!(out, "\"line\":{},\"col\":{}}}", a.line, a.col);
    out
}

/// Serialises a check report as a *single-line* JSON object. The
/// pretty form ([`check_to_json`]) differs only in whitespace.
pub fn check_to_json_compact(report: &CheckReport) -> String {
    let (e, w, n) = tally(report);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"version\":1,\"tool\":\"nuspi-lang\",\"file\":\"{}\",\"verdict\":\"{}\",",
        escape(&report.file),
        report.verdict.as_str()
    );
    let _ = write!(
        out,
        "\"summary\":{{\"errors\":{e},\"warnings\":{w},\"notes\":{n}}},\"diagnostics\":["
    );
    for (i, d) in report.diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"pass\":\"{}\",\"severity\":\"{}\",",
            escape(d.diag.code),
            escape(d.diag.pass),
            d.diag.severity
        );
        let _ = write!(
            out,
            "\"span\":{{\"kind\":\"{}\",\"value\":\"{}\"}},\"message\":\"{}\",",
            d.diag.span.kind(),
            escape(&d.diag.span.value()),
            escape(&d.message)
        );
        if let Some(o) = &d.origin {
            let _ = write!(out, "\"origin\":{},", anchor_json(o, true));
        }
        if let Some(s) = &d.sink {
            let _ = write!(out, "\"sink\":{},", anchor_json(s, false));
        }
        out.push_str("\"witness\":[");
        for (j, step) in d.diag.witness.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"detail\":\"{}\"}}",
                escape(step.rule),
                escape(&step.detail)
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Serialises a check report as a pretty-printed JSON document with a
/// stable byte layout (the golden-file format of `tests/lang_golden.rs`
/// and the `nuspi check --json` payload).
pub fn check_to_json(report: &CheckReport) -> String {
    let (e, w, n) = tally(report);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str("  \"tool\": \"nuspi-lang\",\n");
    let _ = writeln!(out, "  \"file\": \"{}\",", escape(&report.file));
    let _ = writeln!(out, "  \"verdict\": \"{}\",", report.verdict.as_str());
    let _ = writeln!(
        out,
        "  \"summary\": {{ \"errors\": {e}, \"warnings\": {w}, \"notes\": {n} }},"
    );
    if report.diags.is_empty() {
        out.push_str("  \"diagnostics\": []\n");
    } else {
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in report.diags.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"code\": \"{}\",", escape(d.diag.code));
            let _ = writeln!(out, "      \"pass\": \"{}\",", escape(d.diag.pass));
            let _ = writeln!(out, "      \"severity\": \"{}\",", d.diag.severity);
            let _ = writeln!(
                out,
                "      \"span\": {{ \"kind\": \"{}\", \"value\": \"{}\" }},",
                d.diag.span.kind(),
                escape(&d.diag.span.value())
            );
            let _ = writeln!(out, "      \"message\": \"{}\",", escape(&d.message));
            if let Some(o) = &d.origin {
                let _ = writeln!(out, "      \"origin\": {},", anchor_json(o, true));
            }
            if let Some(s) = &d.sink {
                let _ = writeln!(out, "      \"sink\": {},", anchor_json(s, false));
            }
            if d.diag.witness.is_empty() {
                out.push_str("      \"witness\": []\n");
            } else {
                out.push_str("      \"witness\": [\n");
                for (j, step) in d.diag.witness.iter().enumerate() {
                    let _ = write!(
                        out,
                        "        {{ \"rule\": \"{}\", \"detail\": \"{}\" }}",
                        escape(step.rule),
                        escape(&step.detail)
                    );
                    out.push_str(if j + 1 < d.diag.witness.len() {
                        ",\n"
                    } else {
                        "\n"
                    });
                }
                out.push_str("      ]\n");
            }
            out.push_str(if i + 1 < report.diags.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEAK: &str = "func main() {\n\
                        //nuspi::sink::{}\n\
                        out := make(chan)\n\
                        //nuspi::label::{high}\n\
                        pin := 1234\n\
                        out <- pin\n\
                        }";

    const CLEAN: &str = "func main() {\n\
                         //nuspi::sink::{}\n\
                         out := make(chan)\n\
                         ch := make(chan)\n\
                         //nuspi::label::{high}\n\
                         pin := 1\n\
                         go fwd(ch, pin)\n\
                         out <- 0\n\
                         }\n\
                         func fwd(c, v) { c <- v }";

    #[test]
    fn leak_is_insecure_with_both_anchors() {
        let r = check("leak.nu", LEAK);
        assert_eq!(r.verdict, Verdict::Insecure);
        let e001 = r
            .diags
            .iter()
            .find(|d| d.diag.code == "E001")
            .expect("E001");
        let o = e001.origin.as_ref().expect("origin anchor");
        assert_eq!((o.line, o.col), (5, 1), "{o:?}");
        assert_eq!(o.ident, "pin");
        let s = e001.sink.as_ref().expect("sink anchor");
        assert_eq!((s.line, s.col), (3, 1), "{s:?}");
        assert_eq!(s.ident, "out");
        assert_eq!(
            e001.message,
            "value labeled `high` at leak.nu:5:1 reaches sink `out` declared at leak.nu:3:1"
        );
        let text = render_check(&r);
        assert!(text.contains("leak.nu:5:1"), "{text}");
        assert!(
            text.contains("= sink: channel `out` declared at leak.nu:3:1"),
            "{text}"
        );
        assert!(text.contains("insecure"), "{text}");
    }

    #[test]
    fn clean_program_is_secure() {
        let r = check("clean.nu", CLEAN);
        assert_eq!(r.verdict, Verdict::Secure, "{:?}", r.diags);
    }

    #[test]
    fn frontend_failure_is_invalid_with_a_source_span() {
        let r = check("bad.nu", "func main() { x := \"oops\n}");
        assert_eq!(r.verdict, Verdict::Invalid);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].diag.code, "L001");
        assert!(
            r.diags[0].message.starts_with("bad.nu:1:20"),
            "{:?}",
            r.diags[0].message
        );
        let doc = check_to_json(&r);
        assert!(doc.contains("\"verdict\": \"invalid\""), "{doc}");
    }

    #[test]
    fn graded_leak_is_insecure_with_a_lattice_edge_diagnostic() {
        let src = "func main() {\n\
                   //nuspi::sink::{}\n\
                   out := make(chan)\n\
                   //nuspi::label::{conf:secret,integ:tainted}\n\
                   key := 7\n\
                   out <- key\n\
                   }";
        let r = check("graded.nu", src);
        assert_eq!(r.verdict, Verdict::Insecure, "{:?}", r.diags);
        let e009 = r
            .diags
            .iter()
            .find(|d| d.diag.code == "E009")
            .expect("graded-flow diagnostic");
        assert!(
            e009.diag.message.contains("conf:secret,integ:tainted"),
            "{:?}",
            e009.diag.message
        );
        assert!(
            e009.diag
                .witness
                .iter()
                .any(|w| w.detail.contains("violated edge") && w.detail.contains("⋢")),
            "{:?}",
            e009.diag.witness
        );
        let o = e009.origin.as_ref().expect("origin anchor");
        assert_eq!(o.ident, "key");
        assert_eq!(o.label.as_deref(), Some("conf:secret,integ:tainted"));
    }

    #[test]
    fn bottom_graded_value_is_secure() {
        let src = "func main() {\n\
                   //nuspi::sink::{}\n\
                   out := make(chan)\n\
                   //nuspi::label::{conf:public,integ:trusted}\n\
                   tag := 7\n\
                   out <- tag\n\
                   }";
        let r = check("tag.nu", src);
        assert_eq!(r.verdict, Verdict::Secure, "{:?}", r.diags);
    }

    #[test]
    fn hidden_name_reaching_a_sink_is_flagged_from_source() {
        let src = "func main() {\n\
                   //nuspi::sink::{}\n\
                   out := make(chan)\n\
                   //nuspi::hide\n\
                   h := 0\n\
                   out <- h\n\
                   }";
        let r = check("hide.nu", src);
        assert_eq!(r.verdict, Verdict::Insecure, "{:?}", r.diags);
        assert!(
            r.diags.iter().any(|d| d.diag.code == "W106"),
            "expected a hidden-escape warning: {:?}",
            r.diags.iter().map(|d| d.diag.code).collect::<Vec<_>>()
        );
        // The hidden declaration anchors as an origin even though the
        // policy has no entry for it.
        let w = r
            .diags
            .iter()
            .find(|d| d.diag.code == "W106")
            .expect("W106");
        let o = w.origin.as_ref().expect("origin anchor");
        assert_eq!(o.ident, "h");
        assert_eq!(o.role, Role::Hidden);
    }

    #[test]
    fn json_backends_agree_and_are_stable_across_shards() {
        let a = check_to_json(&check_with("leak.nu", LEAK, 1));
        let b = check_to_json(&check_with("leak.nu", LEAK, 4));
        assert_eq!(a, b);
        let compact = check_to_json_compact(&check_with("leak.nu", LEAK, 1));
        assert!(!compact.contains('\n'));
        let squeeze = |s: &str| s.chars().filter(|c| !c.is_whitespace()).collect::<String>();
        assert_eq!(squeeze(&a), squeeze(&compact));
    }
}
