//! Parser robustness: every program in the adversarial corpus yields a
//! structured [`LangError`] with a source position — never a panic.

use nuspi_lang::{check, parse, LangError, Verdict};

/// Malformed programs, one per failure family.
fn corpus() -> Vec<(&'static str, String)> {
    let mut cases: Vec<(&'static str, String)> = vec![
        ("empty file", String::new()),
        ("whitespace only", "  \n\t\n  ".to_owned()),
        ("comment only", "// nothing here\n".to_owned()),
        ("stray token", ")".to_owned()),
        ("toplevel statement", "x := 1".to_owned()),
        (
            "unterminated string",
            "func main() { x := \"oops\n}".to_owned(),
        ),
        ("unterminated block", "func main() {".to_owned()),
        ("unterminated params", "func main( {".to_owned()),
        (
            "duplicate param",
            "func f(a, a) {}\nfunc main() {}".to_owned(),
        ),
        (
            "duplicate function",
            "func main() {}\nfunc main() {}".to_owned(),
        ),
        ("missing main", "func helper() {}".to_owned()),
        ("main with params", "func main(x) {}".to_owned()),
        ("keyword as name", "func if() {}".to_owned()),
        ("bad operator", "func main() { x := 1 * 2 }".to_owned()),
        ("assignment without :=", "func main() { x = 1 }".to_owned()),
        ("send to undeclared", "func main() { ch <- 1 }".to_owned()),
        (
            "recv from non-channel",
            "func main() { v := 1\nx := <-v }".to_owned(),
        ),
        ("undefined function", "func main() { missing() }".to_owned()),
        (
            "arity mismatch",
            "func f(a) {}\nfunc main() { f() }".to_owned(),
        ),
        (
            "recursion",
            "func f(c) { f(c) }\nfunc main() { ch := make(chan)\nf(ch) }".to_owned(),
        ),
        (
            "unknown annotation",
            "func main() {\n//nuspi::taint::{}\nx := 1\n}".to_owned(),
        ),
        (
            "unknown label",
            "func main() {\n//nuspi::label::{low}\nx := 1\n}".to_owned(),
        ),
        (
            "dangling annotation",
            "func main() {\nx := 1\n//nuspi::secret\n}".to_owned(),
        ),
        (
            "sink on a value",
            "func main() {\n//nuspi::sink::{}\nx := 1\n}".to_owned(),
        ),
        (
            "label on a send",
            "func main() {\nch := make(chan)\n//nuspi::label::{high}\nch <- 1\n}".to_owned(),
        ),
        (
            "non-ascii garbage",
            "func main() { \u{1F980}\u{1F980} }".to_owned(),
        ),
        ("nul byte", "func main() { \0 }".to_owned()),
    ];

    // Nesting beyond the parser's depth limit, in both block and
    // parenthesis form.
    let blocks = format!(
        "func main() {{ {}x := 1{} }}",
        "if 1 { ".repeat(200),
        " }".repeat(200)
    );
    cases.push(("deep blocks", blocks));
    let parens = format!(
        "func main() {{ x := {}1{} }}",
        "(".repeat(500),
        ")".repeat(500)
    );
    cases.push(("deep parens", parens));

    // Expansion bombs: all parse fine, and must die in lowering with a
    // structured error — never an exponential process or a stack abort.
    let flat = format!("func main() {{\n{}}}\n", "x := 1\n".repeat(30_000));
    cases.push(("oversized flat program", flat));
    let mut dag = String::from("func f0(ch) { ch <- 0\nch <- 0 }\n");
    for i in 1..=20 {
        dag.push_str(&format!(
            "func f{i}(ch) {{ f{}(ch)\nf{}(ch) }}\n",
            i - 1,
            i - 1
        ));
    }
    dag.push_str("func main() { ch := make(chan)\nf20(ch) }\n");
    cases.push(("doubling call dag", dag));
    let mut chain = String::from("func f0(ch) { ch <- 0 }\n");
    for i in 1..=100 {
        chain.push_str(&format!("func f{i}(ch) {{ f{}(ch) }}\n", i - 1));
    }
    chain.push_str("func main() { ch := make(chan)\nf100(ch) }\n");
    cases.push(("deep call chain", chain));
    cases
}

#[test]
fn adversarial_corpus_yields_structured_errors() {
    for (name, src) in corpus() {
        let err: LangError = match parse(&src) {
            Err(e) => e,
            // Some cases parse fine and fail in lowering; route those
            // through the full frontend.
            Ok(prog) => match nuspi_lang::lower(&prog) {
                Err(e) => e,
                Ok(_) => panic!("{name}: expected a frontend error"),
            },
        };
        assert!(
            err.pos.line >= 1 && err.pos.col >= 1,
            "{name}: error without a source position: {err:?}"
        );
        assert!(!err.message.is_empty(), "{name}: empty message");
        let d = err.to_diagnostic();
        assert_eq!(d.code, "L001", "{name}");
    }
}

#[test]
fn long_flat_programs_check_end_to_end() {
    // A flat 2000-send body: iterative sequence lowering (no stack
    // frame per statement) and a process the whole pipeline digests,
    // lints, and solves without distress.
    let src = format!(
        "func main() {{\n//nuspi::sink::{{}}\nout := make(chan)\n{}}}\n",
        "out <- 0\n".repeat(2_000)
    );
    let report = check("flat.nu", &src);
    assert_eq!(report.verdict, Verdict::Secure, "{:?}", report.diags.len());
}

#[test]
fn sequential_ifs_check_in_linear_time() {
    // 18 sequential ifs once lowered to a 2^18-path process; with the
    // join-channel sequencing the report is small and immediate.
    let mut src = String::from("func main() {\n//nuspi::sink::{}\nout := make(chan)\n");
    for _ in 0..18 {
        src.push_str("if 1 { out <- 1 } else { out <- 0 }\n");
    }
    src.push_str("}\n");
    let report = check("ifs.nu", &src);
    assert_eq!(report.verdict, Verdict::Secure, "{:?}", report.diags.len());
    assert!(
        report.diags.len() < 64,
        "diagnostic blow-up: {}",
        report.diags.len()
    );
}

#[test]
fn adversarial_corpus_is_invalid_not_a_panic_end_to_end() {
    for (name, src) in corpus() {
        let report = check("adversarial.nu", &src);
        assert_eq!(report.verdict, Verdict::Invalid, "{name}");
        assert_eq!(report.diags.len(), 1, "{name}");
        assert_eq!(report.diags[0].diag.code, "L001", "{name}");
        assert!(
            report.diags[0].message.starts_with("adversarial.nu:"),
            "{name}: message not source-anchored: {}",
            report.diags[0].message
        );
    }
}
