//! Lowering determinism: the same source always lowers to an
//! α-digest-identical process — across repeated runs, across spawned
//! threads, and across formatting-only edits. The digest is what the
//! engine keys its cache on, so this property IS the cache contract.

use nuspi_lang::{compile, lower, parse};
use nuspi_syntax::canonical_digest;

const PROGRAM: &str = "\
func relay(c, v) {
	c <- v
}

func main() {
	//nuspi::sink::{}
	out := make(chan)
	a := make(chan)
	b := make(chan)
	//nuspi::label::{high}
	token := 7
	go relay(a, token)
	x := <-a
	b <- x
	//nuspi::secret
	key := 3
	b <- key
	out <- 0
}
";

fn digest_of(src: &str) -> u128 {
    let lowered = lower(&parse(src).unwrap()).unwrap();
    canonical_digest(&lowered.process).0
}

#[test]
fn repeated_lowering_is_digest_identical() {
    let first = digest_of(PROGRAM);
    for _ in 0..16 {
        assert_eq!(digest_of(PROGRAM), first);
    }
}

#[test]
fn lowering_is_digest_identical_across_threads() {
    // `Process` is not `Send` (labels are Rc-backed), so each thread
    // compiles independently and only the digest crosses back.
    let first = digest_of(PROGRAM);
    let handles: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(|| digest_of(PROGRAM)))
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), first);
    }
}

#[test]
fn formatting_only_edits_preserve_the_digest() {
    let first = digest_of(PROGRAM);

    // Tabs to spaces, trailing blanks: columns move, lines do not.
    let spaced: String = PROGRAM
        .lines()
        .map(|l| format!("{}  \n", l.replace('\t', "        ")))
        .collect();
    assert_eq!(digest_of(&spaced), first, "indentation change");

    // Blank lines between statements: lines move, but annotations still
    // attach to the statement directly below / on the same line.
    let aired: String = PROGRAM
        .lines()
        .map(|l| {
            if l.trim().is_empty() || l.trim_start().starts_with("//") {
                format!("{l}\n")
            } else {
                format!("{l}\n\n")
            }
        })
        .collect();
    assert_eq!(digest_of(&aired), first, "blank-line change");

    // Semicolons are skipped by the lexer.
    let semis = PROGRAM.replace("\tc <- v", "\tc <- v;");
    assert_eq!(digest_of(&semis), first, "semicolon change");
}

#[test]
fn renames_and_reorderings_change_the_digest() {
    // Sanity: the digest is not so coarse that distinct programs
    // collide. The canonical form is invariant over freshening indices,
    // not over base symbols, so renaming an identifier — free sink or
    // restricted local — is observable (and correctly misses the cache:
    // a rename changes every source anchor in the report).
    let renamed = PROGRAM.replace("out", "disp");
    assert_ne!(digest_of(&renamed), digest_of(PROGRAM));
    let local = PROGRAM.replace("token", "badge");
    assert_ne!(digest_of(&local), digest_of(PROGRAM));

    // Dropping the secret annotation changes the lowered policy inputs
    // (one fewer restricted secret).
    let unsecret = PROGRAM.replace("\t//nuspi::secret\n", "");
    assert_ne!(digest_of(&unsecret), digest_of(PROGRAM));
}

#[test]
fn compile_collects_identical_secrets_and_sites_each_run() {
    let a = compile("p.nu", PROGRAM).unwrap();
    let b = compile("p.nu", PROGRAM).unwrap();
    assert_eq!(a.secrets, b.secrets);
    assert_eq!(
        canonical_digest(&a.process).0,
        canonical_digest(&b.process).0
    );
    let sites_a: Vec<_> = a.map.sites.keys().collect();
    let sites_b: Vec<_> = b.map.sites.keys().collect();
    assert_eq!(sites_a, sites_b);
}
