//! Semantic lint passes: confinement, carefulness, and invariance
//! re-derived as structured diagnostics with witness traces.
//!
//! | code | finding | source |
//! |------|---------|--------|
//! | E001 | secret-kind value may flow on a public channel | Definition 4 |
//! | E002 | secret-kind value derivable by the attacker | Theorem 4 |
//! | E003 | a free name of the process is declared secret | Definition 4 |
//! | E004 | the estimate fails Table 2 re-validation | Table 2 |
//! | E005 | a reachable state sends a secret in clear | Definition 3 |
//! | E006 | an encryption/decryption key may expose `n*` | Definition 7 |
//! | E007 | `n*` may reach a control position | Definition 7 |
//! | E008 | a comparison may depend on `n*` | Definition 7 |
//! | E009 | a value graded above the clearance may reach an observable channel | lattice flow |
//! | W106 | a `hide`-bound name escapes its scope | no-extrusion rule |
//! | N005 | the carefulness exploration was truncated | — |
//!
//! `E009` runs only on *graded* policies (a non-default lattice, explicit
//! levels, or a raised clearance) and `W106` only when the process has a
//! `hide` binder — so the historical binary corpus emits byte-identical
//! reports.
//!
//! Verdicts are read off the decision solution of the shared
//! [`SemanticCtx`](crate::context::SemanticCtx); witnesses always come
//! from the traced sequential solve. Both have the same production
//! sets, so the emitted diagnostics do not depend on the solver layout.

use crate::context::LintContext;
use crate::diag::{Diagnostic, Severity, Span, WitnessStep};
use crate::registry::{Pass, PassKind};
use nuspi_cfa::{accept, attacker::attacker_confounder, attacker::attacker_name, FlowVar, Prod};
use nuspi_security::{
    carefulness, invariance, n_star, AbstractLevel, AbstractSort, InvarianceViolation,
};
use nuspi_syntax::Symbol;

/// Every built-in semantic pass.
pub fn passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(Confinement),
        Box::new(Carefulness),
        Box::new(Invariance),
        Box::new(HiddenEscape),
        Box::new(GradedFlow),
    ]
}

/// Picks the production of `κ(chan)` (in the traced solution) that best
/// witnesses a secret-kind flow: prefer plain names and honest
/// ciphertexts over attacker-synthesised noise, tie-break on the
/// rendered form so the choice is stable across runs and layouts.
fn secret_witness_prod(ctx: &LintContext, fv: FlowVar) -> Option<Prod> {
    let sem = ctx.semantic();
    let sol = sem.traced_solution();
    let policy = ctx.policy();
    let mut candidates: Vec<&Prod> = sol
        .prods_of(fv)
        .iter()
        .filter(|p| sem.traced_kinds.facts_of_prod(p, policy).may_secret)
        .collect();
    candidates.sort_by_cached_key(|p| {
        let interesting = match p {
            Prod::Name(_) => true,
            Prod::Enc { confounder, .. } => *confounder != attacker_confounder(),
            _ => false,
        };
        (!interesting, sol.render_production(p, 4))
    });
    candidates.first().map(|p| (*p).clone())
}

/// E001–E004 — the static secrecy check of Definition 4.
struct Confinement;

impl Pass for Confinement {
    fn name(&self) -> &'static str {
        "confinement"
    }
    fn description(&self) -> &'static str {
        "static secrecy: no secret-kind value on public channels (Definition 4)"
    }
    fn kind(&self) -> PassKind {
        PassKind::Semantic
    }
    fn run(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let policy = ctx.policy();

        // E003: free secret names (well-formedness, checked before any
        // κ reading because it invalidates the policy's premise).
        let mut free = policy.free_secret_names(ctx.process());
        free.sort_by_key(|n| n.to_string());
        for n in free {
            out.push(Diagnostic {
                code: "E003",
                pass: self.name(),
                severity: Severity::Error,
                span: Span::Name(n.canonical()),
                message: format!("free name `{n}` is declared secret"),
                witness: vec![WitnessStep {
                    rule: "well-formedness requirement fn(P) ⊆ P (Definition 4)",
                    detail: format!(
                        "`{n}` occurs free, so the environment already holds it; \
                         secrets must be restricted"
                    ),
                }],
            });
        }

        let sem = ctx.semantic();
        let sol = sem.decision_solution();

        // E004: acceptability re-validation (Table 2, symbolically).
        for v in accept::verify(sol, ctx.process()) {
            out.push(Diagnostic {
                code: "E004",
                pass: self.name(),
                severity: Severity::Error,
                span: Span::Process,
                message: format!("estimate not acceptable: {v}"),
                witness: vec![WitnessStep {
                    rule: "Table 2 re-validation",
                    detail: v.to_string(),
                }],
            });
        }

        // E001/E002: a secret-kind production in the κ of a public
        // channel (or the attacker's knowledge).
        for chan in sol.channels() {
            if !policy.is_public(chan) {
                continue; // κ of a secret channel is unconstrained
            }
            let Some(id) = sol.var_id(FlowVar::Kappa(chan)) else {
                continue;
            };
            if !sem.decision_kinds.facts(id).may_secret {
                continue;
            }
            let fv = FlowVar::Kappa(chan);
            let mut witness = Vec::new();
            if let Some(prod) = secret_witness_prod(ctx, fv) {
                let rendered = sem.traced_solution().render_production(&prod, 4);
                witness.push(WitnessStep {
                    rule: "kind classification (Definition 2)",
                    detail: format!("kind({rendered}) = S under the declared policy"),
                });
                witness.extend(ctx.witness_from_flow(fv, &prod));
            }
            if chan == attacker_name() {
                out.push(Diagnostic {
                    code: "E002",
                    pass: self.name(),
                    severity: Severity::Error,
                    span: Span::Channel(chan),
                    message: "a secret-kind value may become derivable by the attacker".to_owned(),
                    witness,
                });
            } else {
                out.push(Diagnostic {
                    code: "E001",
                    pass: self.name(),
                    severity: Severity::Error,
                    span: Span::Channel(chan),
                    message: format!("secret-kind value may flow on public channel `{chan}`"),
                    witness,
                });
            }
        }
        out
    }
}

/// E005/N005 — the dynamic carefulness monitor of Definition 3.
struct Carefulness;

impl Pass for Carefulness {
    fn name(&self) -> &'static str {
        "carefulness"
    }
    fn description(&self) -> &'static str {
        "dynamic secrecy: no reachable state sends a secret in clear (Definition 3)"
    }
    fn kind(&self) -> PassKind {
        PassKind::Semantic
    }
    fn run(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let report = carefulness(ctx.process(), ctx.policy(), &ctx.config().exec);
        // Deduplicate on (channel, canonical value): the same leak often
        // recurs in many interleavings, and canonicalisation strips the
        // run-varying freshness indices of generated names.
        let mut seen: Vec<(Symbol, String)> = report
            .violations
            .iter()
            .map(|v| (v.channel, v.value.canonicalize().to_string()))
            .collect();
        seen.sort_by(|a, b| (a.0.as_str(), &a.1).cmp(&(b.0.as_str(), &b.1)));
        seen.dedup();
        let mut out: Vec<Diagnostic> = seen
            .into_iter()
            .map(|(chan, value)| Diagnostic {
                code: "E005",
                pass: self.name(),
                severity: Severity::Error,
                span: Span::Channel(chan),
                message: format!(
                    "a reachable state sends secret value {value} in clear on \
                     public channel `{chan}`"
                ),
                witness: vec![
                    WitnessStep {
                        rule: "commitment output premise (Definition 3)",
                        detail: format!(
                            "some τ-reachable derivative commits to the output of \
                             {value} on `{chan}`"
                        ),
                    },
                    WitnessStep {
                        rule: "kind classification (Definition 2)",
                        detail: format!("kind({value}) = S under the declared policy"),
                    },
                ],
            })
            .collect();
        if report.stats.truncated {
            out.push(Diagnostic {
                code: "N005",
                pass: self.name(),
                severity: Severity::Note,
                span: Span::Process,
                message: format!(
                    "carefulness exploration truncated after {} states; the \
                     verdict covers only the explored prefix",
                    report.stats.states
                ),
                witness: vec![],
            });
        }
        out
    }
}

/// E006–E008 — the static non-interference check of Definition 7,
/// active only when the process tracks `n*` (i.e. came through the
/// [`sort`](nuspi_security::sort) substitution of §5).
struct Invariance;

impl Pass for Invariance {
    fn name(&self) -> &'static str {
        "invariance"
    }
    fn description(&self) -> &'static str {
        "non-interference: the tracked message never steers control (Definition 7)"
    }
    fn kind(&self) -> PassKind {
        PassKind::Semantic
    }
    fn run(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut mentioned = std::collections::HashSet::new();
        crate::syntactic::collect_symbols(ctx.process(), &mut mentioned);
        if !mentioned.contains(&n_star()) {
            return Vec::new(); // nothing is being tracked
        }
        let sem = ctx.semantic();
        let decision_sorts = AbstractSort::compute(sem.decision_solution(), n_star());
        let traced_sorts = if sem.decision.is_some() {
            AbstractSort::compute(sem.traced_solution(), n_star())
        } else {
            decision_sorts.clone()
        };
        let violations = invariance(ctx.process(), sem.decision_solution(), &decision_sorts);
        violations
            .into_iter()
            .map(|v| self.diagnose(ctx, &traced_sorts, v))
            .collect()
    }
}

impl Invariance {
    fn diagnose(
        &self,
        ctx: &LintContext,
        traced_sorts: &AbstractSort,
        v: InvarianceViolation,
    ) -> Diagnostic {
        let sem = ctx.semantic();
        let sol = sem.traced_solution();
        // A witness production at a ζ entry that may be E-sorted,
        // chosen stably by rendered form.
        let exposed_prod = |l| {
            let fv = FlowVar::Zeta(l);
            let mut ps: Vec<&Prod> = sol
                .prods_of(fv)
                .iter()
                .filter(|p| traced_sorts.facts_of_prod(p).may_exposed)
                .collect();
            ps.sort_by_cached_key(|p| sol.render_production(p, 4));
            ps.first().map(|p| (*p).clone())
        };
        match v {
            InvarianceViolation::ExposedKey { label } => {
                let span = ctx.span_of(label);
                let mut witness = vec![WitnessStep {
                    rule: "abstract sort fixpoint (Definition 6)",
                    detail: format!(
                        "{} may contain an E-sorted value (one exposing n*)",
                        ctx.display_flow_var(FlowVar::Zeta(label))
                    ),
                }];
                if let Some(p) = exposed_prod(label) {
                    witness.extend(ctx.witness_from_flow(FlowVar::Zeta(label), &p));
                }
                let message = format!(
                    "encryption/decryption key at {span} may expose the tracked message n*"
                );
                Diagnostic {
                    code: "E006",
                    pass: self.name(),
                    severity: Severity::Error,
                    span,
                    message,
                    witness,
                }
            }
            InvarianceViolation::TrackedAtControlPosition { label, role } => {
                let span = ctx.span_of(label);
                let mut witness = vec![WitnessStep {
                    rule: "sensitive-position check (Definition 7)",
                    detail: format!(
                        "n* ∈ {}: the tracked name itself reaches {role}",
                        ctx.display_flow_var(FlowVar::Zeta(label))
                    ),
                }];
                witness.extend(ctx.witness_from_flow(FlowVar::Zeta(label), &Prod::Name(n_star())));
                let message = format!("tracked name n* may reach {role} at {span}");
                Diagnostic {
                    code: "E007",
                    pass: self.name(),
                    severity: Severity::Error,
                    span,
                    message,
                    witness,
                }
            }
            InvarianceViolation::ExposedComparison { label } => {
                let span = ctx.span_of(label);
                let mut witness = vec![WitnessStep {
                    rule: "abstract sort fixpoint (Definition 6)",
                    detail: format!(
                        "{} may contain an E-sorted value (one exposing n*)",
                        ctx.display_flow_var(FlowVar::Zeta(label))
                    ),
                }];
                if let Some(p) = exposed_prod(label) {
                    witness.extend(ctx.witness_from_flow(FlowVar::Zeta(label), &p));
                }
                let message = format!("comparison at {span} may depend on the tracked message n*");
                Diagnostic {
                    code: "E008",
                    pass: self.name(),
                    severity: Severity::Error,
                    span,
                    message,
                    witness,
                }
            }
        }
    }
}

/// W106 — a `hide`-bound name escapes its scope: the estimate shows it
/// reaching the κ of an observable channel (or the attacker's
/// knowledge), contradicting the no-extrusion commitment rule's intent.
/// A warning, not an error: the dynamic semantics *blocks* the
/// extrusion, but the program text attempts it, which is almost always
/// a protocol bug (and `E001`/`E002` fire alongside, since hidden names
/// are secret by construction).
struct HiddenEscape;

impl Pass for HiddenEscape {
    fn name(&self) -> &'static str {
        "hidden-escape"
    }
    fn description(&self) -> &'static str {
        "hide binders whose name the estimate lets reach observable channels"
    }
    fn kind(&self) -> PassKind {
        PassKind::Semantic
    }
    fn run(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let hidden = ctx.process().hidden_names();
        if hidden.is_empty() {
            return Vec::new(); // hide-free processes never pay for this pass
        }
        let mut out = Vec::new();
        let sem = ctx.semantic();
        let sol = sem.decision_solution();
        for chan in sol.channels() {
            if !ctx.policy().is_public(chan) {
                continue;
            }
            let Some(id) = sol.var_id(FlowVar::Kappa(chan)) else {
                continue;
            };
            for h in &hidden {
                if !sol.prods_of_id(id).contains(&Prod::Name(*h)) {
                    continue;
                }
                let mut witness = vec![WitnessStep {
                    rule: "no-extrusion rule for `hide`",
                    detail: format!(
                        "`{h}` is hide-bound, yet the estimate derives it in κ({chan}); \
                         at runtime the commitment is dropped, but the program attempts \
                         the extrusion"
                    ),
                }];
                witness.extend(ctx.witness_from_flow(FlowVar::Kappa(chan), &Prod::Name(*h)));
                let message = if chan == attacker_name() {
                    format!("hidden name `{h}` escapes its scope: it may become derivable by the attacker")
                } else {
                    format!(
                        "hidden name `{h}` escapes its scope: it may flow on public channel `{chan}`"
                    )
                };
                out.push(Diagnostic {
                    code: "W106",
                    pass: self.name(),
                    severity: Severity::Warning,
                    span: Span::Name(*h),
                    message,
                    witness,
                });
            }
        }
        out
    }
}

/// E009 — the lattice form of the confinement check: a value graded
/// outside the attacker's clearance down-set may flow on an observable
/// channel. Runs only on graded policies; on the default two-point
/// lattice `E001`/`E002` already say everything there is to say.
struct GradedFlow;

impl Pass for GradedFlow {
    fn name(&self) -> &'static str {
        "graded-flow"
    }
    fn description(&self) -> &'static str {
        "lattice flow: no value graded above the clearance on observable channels"
    }
    fn kind(&self) -> PassKind {
        PassKind::Semantic
    }
    fn run(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let policy = ctx.policy();
        if !policy.is_graded() {
            return Vec::new(); // binary policies keep the historical report
        }
        let lat = policy.lattice();
        let clearance = policy.clearance();
        let mut out = Vec::new();
        let sem = ctx.semantic();
        let sol = sem.decision_solution();
        let levels = AbstractLevel::compute(sol, policy);
        let traced_levels = if sem.decision.is_some() {
            AbstractLevel::compute(sem.traced_solution(), policy)
        } else {
            levels.clone()
        };
        for chan in sol.channels() {
            let observable = lat.leq(policy.level_of(chan), clearance) || chan == attacker_name();
            if !observable {
                continue; // κ of an unobservable channel is unconstrained
            }
            let Some(id) = sol.var_id(FlowVar::Kappa(chan)) else {
                continue;
            };
            for l in levels.escaping(id) {
                let fv = FlowVar::Kappa(chan);
                let mut witness = vec![WitnessStep {
                    rule: "lattice flow judgment (ℓ ⊑ clearance)",
                    detail: format!(
                        "violated edge: {} ⋢ {} — the level is outside the \
                         attacker's clearance down-set",
                        lat.show(l),
                        lat.show(clearance)
                    ),
                }];
                if let Some(prod) = graded_witness_prod(ctx, &traced_levels, fv, clearance) {
                    let rendered = sem.traced_solution().render_production(&prod, 4);
                    witness.push(WitnessStep {
                        rule: "level classification (Definition 2, graded)",
                        detail: format!("level({rendered}) escapes the clearance"),
                    });
                    witness.extend(ctx.witness_from_flow(fv, &prod));
                }
                let message = if chan == attacker_name() {
                    format!(
                        "a value graded {} may become derivable by the attacker \
                         (clearance {})",
                        lat.show(l),
                        lat.show(clearance)
                    )
                } else {
                    format!(
                        "value graded {} may flow on observable channel `{chan}` \
                         (clearance {})",
                        lat.show(l),
                        lat.show(clearance)
                    )
                };
                out.push(Diagnostic {
                    code: "E009",
                    pass: self.name(),
                    severity: Severity::Error,
                    span: Span::Channel(chan),
                    message,
                    witness,
                });
            }
        }
        out
    }
}

/// Picks the production of `κ(chan)` (traced solution) whose level set
/// escapes the clearance, stably — the graded analogue of
/// [`secret_witness_prod`].
fn graded_witness_prod(
    ctx: &LintContext,
    traced_levels: &AbstractLevel,
    fv: FlowVar,
    clearance: nuspi_security::Level,
) -> Option<Prod> {
    let sem = ctx.semantic();
    let sol = sem.traced_solution();
    let policy = ctx.policy();
    let observable = policy.lattice().downset(clearance);
    let mut candidates: Vec<&Prod> = sol
        .prods_of(fv)
        .iter()
        .filter(|p| {
            !traced_levels
                .facts_of_prod(p, policy)
                .minus(observable)
                .is_empty()
        })
        .collect();
    candidates.sort_by_cached_key(|p| {
        let interesting = match p {
            Prod::Name(_) => true,
            Prod::Enc { confounder, .. } => *confounder != attacker_confounder(),
            _ => false,
        };
        (!interesting, sol.render_production(p, 4))
    });
    candidates.first().map(|p| (*p).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{LintConfig, LintContext};
    use crate::registry::PassRegistry;
    use nuspi_security::Policy;
    use nuspi_syntax::parse_process;

    fn lint_all(src: &str, secrets: &[&str]) -> Vec<Diagnostic> {
        let p = parse_process(src).unwrap();
        let policy = Policy::with_secrets(secrets.iter().copied());
        let ctx = LintContext::new(&p, &policy);
        PassRegistry::with_defaults().run(&ctx)
    }

    fn codes(d: &[Diagnostic]) -> Vec<&'static str> {
        d.iter().map(|d| d.code).collect()
    }

    #[test]
    fn cleartext_secret_yields_e001_e002_e005() {
        let d = lint_all("(new m) c<m>.0", &["m"]);
        for code in ["E001", "E002", "E005"] {
            assert!(codes(&d).contains(&code), "missing {code}: {d:?}");
        }
    }

    #[test]
    fn every_error_diagnostic_has_a_nonempty_witness() {
        let d = lint_all("(new m) c<m>.0", &["m"]);
        for diag in d.iter().filter(|d| d.code.starts_with('E')) {
            assert!(!diag.witness.is_empty(), "{diag:?}");
            for step in &diag.witness {
                assert!(!step.rule.is_empty() && !step.detail.is_empty());
            }
        }
    }

    #[test]
    fn confined_protocol_is_clean_of_errors() {
        let src = "
            (new m) (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )";
        let d = lint_all(src, &["kAS", "kBS", "kAB", "m"]);
        assert!(!d.iter().any(|d| d.severity == Severity::Error), "{d:?}");
    }

    #[test]
    fn free_secret_name_yields_e003() {
        let d = lint_all("c<m>.0", &["m"]);
        assert!(codes(&d).contains(&"E003"), "{d:?}");
    }

    #[test]
    fn tracked_control_position_yields_e007() {
        // P(x) with x := n*: the tracked message is used as a channel.
        let d = lint_all("c<n*>.0 | c(x). x<0>.0", &["n*"]);
        assert!(codes(&d).contains(&"E007"), "{d:?}");
    }

    #[test]
    fn tracked_comparison_yields_e008() {
        let d = lint_all("c<n*>.0 | c(x). [x is 0] d<0>.0", &["n*"]);
        assert!(codes(&d).contains(&"E008"), "{d:?}");
    }

    #[test]
    fn invariance_pass_is_inert_without_n_star() {
        let d = lint_all("(new m) c<m>.0", &["m"]);
        assert!(!d.iter().any(|d| matches!(d.code, "E006" | "E007" | "E008")));
    }

    #[test]
    fn hidden_escape_yields_w106_and_binary_errors() {
        let d = lint_all("(hide h) c<h>.0", &[]);
        assert!(codes(&d).contains(&"W106"), "{d:?}");
        // Hidden names are secret by construction, so the binary checks
        // fire with no policy entry.
        assert!(codes(&d).contains(&"E001"), "{d:?}");
        let hit = d.iter().find(|d| d.code == "W106").unwrap();
        assert!(hit.message.contains("escapes its scope"), "{hit:?}");
        assert!(!hit.witness.is_empty());
    }

    #[test]
    fn contained_hidden_name_is_clean() {
        let d = lint_all("(hide h) (c<h>.0 | c(x).0)", &[]);
        // The hidden name circulates only inside its scope... but the
        // attacker taps the public channel c, so the estimate still sees
        // an escape. A genuinely contained hide uses a secret channel:
        let d2 = lint_all("(new s) (hide h) (s<h>.0 | s(x).0)", &["s"]);
        assert!(!codes(&d2).contains(&"W106"), "{d2:?}");
        assert!(codes(&d).contains(&"W106"), "{d:?}");
    }

    #[test]
    fn hide_free_process_never_emits_w106() {
        let d = lint_all("(new m) c<m>.0", &["m"]);
        assert!(!codes(&d).contains(&"W106"));
    }

    #[test]
    fn graded_policy_yields_e009_naming_the_lattice_edge() {
        use nuspi_security::SecLattice;
        let p = parse_process("(new db) c<db>.0").unwrap();
        let mut policy = Policy::with_lattice(SecLattice::diamond4());
        let lat = policy.lattice().clone();
        policy.grade("db", lat.level("confidential", "trusted").unwrap());
        let ctx = LintContext::new(&p, &policy);
        let d = PassRegistry::with_defaults().run(&ctx);
        let hit = d.iter().find(|d| d.code == "E009").expect("E009");
        assert!(
            hit.message.contains("conf:confidential,integ:trusted"),
            "{hit:?}"
        );
        assert!(hit.witness[0].detail.contains('⋢'), "{hit:?}");
    }

    #[test]
    fn ungraded_policy_never_emits_e009() {
        let d = lint_all("(new m) c<m>.0", &["m"]);
        assert!(!codes(&d).contains(&"E009"));
    }

    #[test]
    fn raised_clearance_silences_e009() {
        use nuspi_security::SecLattice;
        let p = parse_process("(new db) c<db>.0").unwrap();
        let mut policy = Policy::with_lattice(SecLattice::diamond4());
        let lat = policy.lattice().clone();
        let conf = lat.level("confidential", "trusted").unwrap();
        policy.grade("db", conf);
        policy.set_clearance(conf);
        let ctx = LintContext::new(&p, &policy);
        let d = PassRegistry::with_defaults().run(&ctx);
        assert!(!d.iter().any(|d| d.severity == Severity::Error), "{d:?}");
    }

    #[test]
    fn diagnostics_agree_across_solver_layouts() {
        let p = parse_process("(new m) (c<m>.0 | c(x). d<x>.0)").unwrap();
        let policy = Policy::with_secrets(["m"]);
        let seq = LintContext::new(&p, &policy);
        let par = LintContext::with_config(
            &p,
            &policy,
            LintConfig {
                shards: 4,
                ..LintConfig::default()
            },
        );
        let r = PassRegistry::with_defaults();
        assert_eq!(r.run(&seq), r.run(&par));
    }
}
