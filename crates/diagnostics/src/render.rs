//! The human-facing pretty printer (rustc-style).
//!
//! ```text
//! error[E001]: secret-kind value may flow on public channel `cBS`
//!   --> channel cBS (pass: confinement)
//!    1. kind classification (Definition 2): kind(kAB) = S …
//!    2. Table 2 production (constructor occurrence): kAB is produced at …
//! ```

use crate::diag::{Diagnostic, Severity};
use std::fmt::Write as _;

/// Renders one diagnostic in the rustc-inspired layout.
pub fn render_diagnostic(d: &Diagnostic) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
    let _ = writeln!(out, "  --> {} (pass: {})", d.span, d.pass);
    for (i, step) in d.witness.iter().enumerate() {
        let _ = writeln!(out, "   {}. {}: {}", i + 1, step.rule, step.detail);
    }
    out
}

/// Renders a full report: every diagnostic followed by a summary line.
pub fn render_report(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&render_diagnostic(d));
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let notes = diags
        .iter()
        .filter(|d| d.severity == Severity::Note)
        .count();
    let _ = writeln!(
        out,
        "lint finished: {errors} error(s), {warnings} warning(s), {notes} note(s)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Span, WitnessStep};
    use nuspi_syntax::Symbol;

    fn sample() -> Diagnostic {
        Diagnostic {
            code: "E001",
            pass: "confinement",
            severity: Severity::Error,
            span: Span::Channel(Symbol::intern("c")),
            message: "secret-kind value may flow on public channel `c`".into(),
            witness: vec![WitnessStep {
                rule: "kind classification (Definition 2)",
                detail: "kind(m) = S under the declared policy".into(),
            }],
        }
    }

    #[test]
    fn renders_header_span_and_numbered_witness() {
        let text = render_diagnostic(&sample());
        assert!(text.starts_with("error[E001]: secret-kind"));
        assert!(text.contains("--> channel c (pass: confinement)"));
        assert!(text.contains("   1. kind classification"));
    }

    #[test]
    fn report_ends_with_a_summary() {
        let text = render_report(&[sample()]);
        assert!(text
            .trim_end()
            .ends_with("1 error(s), 0 warning(s), 0 note(s)"));
    }

    #[test]
    fn empty_report_still_summarises() {
        let text = render_report(&[]);
        assert_eq!(text, "lint finished: 0 error(s), 0 warning(s), 0 note(s)\n");
    }
}
