//! # nuspi-diagnostics — a security lint engine over the νSPI analyses
//!
//! A multi-pass driver that re-derives the paper's security verdicts —
//! confinement (Definition 4), carefulness (Definition 3), invariance
//! (Definition 7) — as structured [`Diagnostic`]s with seed-rooted
//! witness traces, plus purely syntactic passes that need no solver at
//! all. Two render backends share the one data model: a rustc-style
//! pretty printer ([`render_report`]) and a byte-stable JSON serializer
//! ([`to_json`]) suitable for golden files and CI.
//!
//! The entry point is [`lint`]:
//!
//! ```
//! use nuspi_diagnostics::{lint, Severity};
//! use nuspi_security::Policy;
//! use nuspi_syntax::parse_process;
//!
//! let p = parse_process("(new m) c<m>.0")?;
//! let policy = Policy::with_secrets(["m"]);
//! let diags = lint(&p, &policy);
//! assert!(diags.iter().any(|d| d.code == "E001" && d.severity == Severity::Error));
//! assert!(!diags[0].witness.is_empty());
//! # Ok::<(), nuspi_syntax::ParseError>(())
//! ```
//!
//! Passes are registered in a [`PassRegistry`]; adding a pass means
//! implementing [`Pass`] and registering it — the driver, renderers and
//! report ordering never change. Output order is a total order on the
//! diagnostics themselves (severity, code, span, message), so it is
//! independent of pass registration order, hashing, label minting, and
//! solver layout: linting with a sharded solver
//! ([`LintConfig::shards`]` > 1`) yields byte-identical reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod diag;
mod json;
mod registry;
mod render;
mod semantic;
mod syntactic;

pub use context::{LintConfig, LintContext, SemanticCtx};
pub use diag::{sort_diagnostics, Diagnostic, Severity, Span, WitnessStep};
pub use json::{to_json, to_json_compact};
pub use registry::{Pass, PassKind, PassRegistry};
pub use render::{render_diagnostic, render_report};

use nuspi_security::Policy;
use nuspi_syntax::Process;

/// Runs every built-in pass over `p` under `policy` with the default
/// configuration, returning diagnostics in the stable report order.
pub fn lint(p: &Process, policy: &Policy) -> Vec<Diagnostic> {
    lint_with(p, policy, LintConfig::default())
}

/// Like [`lint`] with an explicit [`LintConfig`] (solver shards,
/// exploration budgets).
pub fn lint_with(p: &Process, policy: &Policy, config: LintConfig) -> Vec<Diagnostic> {
    let ctx = LintContext::with_config(p, policy, config);
    PassRegistry::with_defaults().run(&ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::parse_process;

    #[test]
    fn lint_is_deterministic_across_runs() {
        let p = parse_process("(new m) (c<m>.0 | c(x). d<x>.0)").unwrap();
        let policy = Policy::with_secrets(["m"]);
        let a = to_json(&lint(&p, &policy));
        let b = to_json(&lint(&p, &policy));
        assert_eq!(a, b);
    }

    #[test]
    fn lint_is_byte_identical_across_shard_counts() {
        let p = parse_process("(new m) (c<m>.0 | c(x). d<x>.0)").unwrap();
        let policy = Policy::with_secrets(["m"]);
        let seq = to_json(&lint(&p, &policy));
        let par = to_json(&lint_with(
            &p,
            &policy,
            LintConfig {
                shards: 4,
                ..LintConfig::default()
            },
        ));
        assert_eq!(seq, par);
    }

    #[test]
    fn clean_process_lints_clean() {
        let p = parse_process("(new k) (new m) c<{m, new r}:k>.0").unwrap();
        let policy = Policy::with_secrets(["k", "m"]);
        let diags = lint(&p, &policy);
        assert!(
            !diags.iter().any(|d| d.severity == Severity::Error),
            "{diags:?}"
        );
    }
}
