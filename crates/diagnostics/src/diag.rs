//! The diagnostic data model: severity, span, witness steps.
//!
//! Diagnostics are *data*, not prose: the span names a program point (a
//! label ordinal, a channel, a name) and the witness is a list of steps
//! each naming the concrete Table 2 constraint or Dolev–Yao closure rule
//! that justifies the next hop of the flow. Rendering to text or JSON is
//! the job of [`render`](crate::render) and [`json`](crate::json).
//!
//! Spans refer to labels by *ordinal* — the position of the label in the
//! pre-order traversal of the process ([`Process::labels`]) — never by
//! raw [`Label`](nuspi_syntax::Label) value, because raw labels are
//! minted from a global counter and are not stable across runs.
//!
//! [`Process::labels`]: nuspi_syntax::Process::labels

use nuspi_syntax::Symbol;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// A security property is (or may be) violated.
    Error,
    /// Suspicious but not a property violation.
    Warning,
    /// Informational (e.g. a bounded check was truncated).
    Note,
}

impl Severity {
    /// Stable lowercase name, used by both render backends.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }

    /// Sort rank: errors first.
    pub(crate) fn rank(self) -> u8 {
        match self {
            Severity::Error => 0,
            Severity::Warning => 1,
            Severity::Note => 2,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Span {
    /// A labelled program point, identified by the ordinal of its label
    /// in the process' pre-order label traversal (stable across runs,
    /// unlike raw label values).
    Point {
        /// Zero-based position in [`Process::labels`].
        ///
        /// [`Process::labels`]: nuspi_syntax::Process::labels
        ordinal: usize,
    },
    /// A channel (its `κ` component).
    Channel(Symbol),
    /// A canonical name (a binder or policy entry).
    Name(Symbol),
    /// The process as a whole.
    Process,
    /// A point in surface-language source text (1-based line and
    /// column). Produced by frontends such as `nuspi-lang`, whose
    /// diagnostics anchor to the file being compiled rather than to a
    /// νSPI program point.
    Source {
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        col: u32,
    },
}

impl Span {
    /// Stable, layout-independent sort key.
    pub(crate) fn sort_key(&self) -> (u8, u64, &str) {
        match self {
            Span::Point { ordinal } => (0, *ordinal as u64, ""),
            Span::Channel(n) => (1, 0, n.as_str()),
            Span::Name(n) => (2, 0, n.as_str()),
            Span::Process => (3, 0, ""),
            // Lines first, then columns; a 32/32 split keeps the
            // (u8, u64, &str) key shape shared with the other kinds
            // while leaving any u32 column (minified one-line input)
            // short of the line bits.
            Span::Source { line, col } => (4, (u64::from(*line) << 32) | u64::from(*col), ""),
        }
    }

    /// The stable string form used by the JSON backend.
    pub fn value(&self) -> String {
        match self {
            Span::Point { ordinal } => format!("ℓ#{ordinal}"),
            Span::Channel(n) | Span::Name(n) => n.as_str().to_owned(),
            Span::Process => "process".to_owned(),
            Span::Source { line, col } => format!("{line}:{col}"),
        }
    }

    /// The span kind's stable name.
    pub fn kind(&self) -> &'static str {
        match self {
            Span::Point { .. } => "point",
            Span::Channel(_) => "channel",
            Span::Name(_) => "name",
            Span::Process => "process",
            Span::Source { .. } => "source",
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Point { ordinal } => write!(f, "ℓ#{ordinal}"),
            Span::Channel(n) => write!(f, "channel {n}"),
            Span::Name(n) => write!(f, "name {n}"),
            Span::Process => write!(f, "process"),
            Span::Source { line, col } => write!(f, "source {line}:{col}"),
        }
    }
}

/// One step of a witness trace. Every step names the concrete constraint
/// or closure rule that justifies it (`rule`) and instantiates it for
/// this flow (`detail`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WitnessStep {
    /// The Table 2 clause, closure rule, or definition applied.
    pub rule: &'static str,
    /// The instantiation: which value moved where.
    pub detail: String,
}

/// A single finding of a lint pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable machine-readable code (`E...` semantic, `W...` syntactic,
    /// `N...` informational).
    pub code: &'static str,
    /// The pass that produced the diagnostic.
    pub pass: &'static str,
    /// Severity.
    pub severity: Severity,
    /// The program point or entity the diagnostic is about.
    pub span: Span,
    /// Human-readable one-line message.
    pub message: String,
    /// The seed-rooted flow trace justifying the finding. Non-empty for
    /// every semantic diagnostic.
    pub witness: Vec<WitnessStep>,
}

/// Sorts diagnostics into the stable report order: severity, then code,
/// then span, then message. Nothing in the key depends on hashing,
/// solver layout, or label minting order.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.severity.rank(), a.code, a.span.sort_key(), &a.message).cmp(&(
            b.severity.rank(),
            b.code,
            b.span.sort_key(),
            &b.message,
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_errors_first() {
        let mut d = vec![
            Diagnostic {
                code: "N001",
                pass: "p",
                severity: Severity::Note,
                span: Span::Process,
                message: "n".into(),
                witness: vec![],
            },
            Diagnostic {
                code: "E001",
                pass: "p",
                severity: Severity::Error,
                span: Span::Channel(Symbol::intern("c")),
                message: "e".into(),
                witness: vec![],
            },
            Diagnostic {
                code: "W101",
                pass: "p",
                severity: Severity::Warning,
                span: Span::Name(Symbol::intern("k")),
                message: "w".into(),
                witness: vec![],
            },
        ];
        sort_diagnostics(&mut d);
        assert_eq!(
            d.iter().map(|d| d.code).collect::<Vec<_>>(),
            ["E001", "W101", "N001"]
        );
    }

    #[test]
    fn span_sorts_points_by_ordinal_then_named_spans() {
        let mut d: Vec<Diagnostic> = [
            Span::Name(Symbol::intern("a")),
            Span::Point { ordinal: 2 },
            Span::Channel(Symbol::intern("z")),
            Span::Point { ordinal: 0 },
        ]
        .into_iter()
        .map(|span| Diagnostic {
            code: "E001",
            pass: "p",
            severity: Severity::Error,
            span,
            message: "m".into(),
            witness: vec![],
        })
        .collect();
        sort_diagnostics(&mut d);
        assert_eq!(d[0].span, Span::Point { ordinal: 0 });
        assert_eq!(d[1].span, Span::Point { ordinal: 2 });
        assert_eq!(d[2].span, Span::Channel(Symbol::intern("z")));
        assert_eq!(d[3].span, Span::Name(Symbol::intern("a")));
    }

    #[test]
    fn source_spans_sort_by_line_before_column_even_for_huge_columns() {
        // A column past 2^16 (one enormous minified line) must never
        // leak into the line part of the sort key: line 1 col 70000
        // still sorts before line 2 col 1.
        let mut d: Vec<Diagnostic> = [
            Span::Source { line: 2, col: 1 },
            Span::Source {
                line: 1,
                col: 70_000,
            },
            Span::Source { line: 1, col: 5 },
        ]
        .into_iter()
        .map(|span| Diagnostic {
            code: "E001",
            pass: "p",
            severity: Severity::Error,
            span,
            message: "m".into(),
            witness: vec![],
        })
        .collect();
        sort_diagnostics(&mut d);
        assert_eq!(d[0].span, Span::Source { line: 1, col: 5 });
        assert_eq!(
            d[1].span,
            Span::Source {
                line: 1,
                col: 70_000
            }
        );
        assert_eq!(d[2].span, Span::Source { line: 2, col: 1 });
    }

    #[test]
    fn span_display_and_json_value() {
        assert_eq!(Span::Point { ordinal: 7 }.to_string(), "ℓ#7");
        assert_eq!(Span::Point { ordinal: 7 }.value(), "ℓ#7");
        assert_eq!(Span::Channel(Symbol::intern("c")).kind(), "channel");
        assert_eq!(Span::Process.value(), "process");
    }
}
