//! The shared lint context: the process, the policy, stable label
//! ordinals, and a lazily-built semantic layer (solver runs, provenance,
//! abstract kind facts).
//!
//! Syntactic passes never touch the semantic layer, so `lint` on a
//! process with only syntactic findings pays zero solver cost — the
//! `bench_lint` binary measures exactly this. Semantic passes share one
//! [`SemanticCtx`] built on first use.
//!
//! ## Determinism across solver layouts
//!
//! Verdicts (does `κ(c)` contain a secret-kind production?) are read off
//! the *decision* solution — sharded when [`LintConfig::shards`] `> 1` —
//! while witness traces always come from a *traced sequential* solve,
//! because only the sequential solver records [`Provenance`]. The two
//! solutions have provably equal production sets (the differential suite
//! covers this), so the emitted diagnostics are byte-identical whichever
//! layout decided them. Facts indexed by [`VarId`](nuspi_cfa::VarId) are
//! never mixed across the two solutions: each gets its own
//! [`AbstractKind`] fixpoint.

use crate::diag::{Span, WitnessStep};
use nuspi_cfa::{
    analyze_with_attacker_parallel, analyze_with_attacker_traced, AttackedSolution, EdgeKind,
    FlowStepKind, FlowVar, Prod, Provenance, Solution,
};
use nuspi_security::{AbstractKind, Policy};
use nuspi_semantics::ExecConfig;
use nuspi_syntax::{Label, Process};
use std::cell::OnceCell;
use std::collections::HashMap;

/// Tunables for a lint run.
#[derive(Clone, Copy, Debug)]
pub struct LintConfig {
    /// Solver shards for the decision solution. `1` solves sequentially;
    /// `> 1` uses the sharded parallel solver. Diagnostics are identical
    /// either way.
    pub shards: usize,
    /// Budgets for the bounded carefulness monitor.
    pub exec: ExecConfig,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            shards: 1,
            exec: ExecConfig::default(),
        }
    }
}

/// Everything a lint pass may consult. Construction is cheap; the
/// semantic layer (solver, provenance, kind facts) is built on first
/// use via [`LintContext::semantic`].
pub struct LintContext {
    process: Process,
    policy: Policy,
    config: LintConfig,
    ordinals: HashMap<Label, usize>,
    semantic: OnceCell<SemanticCtx>,
}

/// The solver-derived layer shared by the semantic passes.
pub struct SemanticCtx {
    /// Sequential traced solve of `P` + most powerful attacker; the
    /// source of every witness trace and rendered production.
    pub traced: AttackedSolution,
    /// First-cause flow provenance of the traced solve.
    pub provenance: Provenance,
    /// Kind facts over the traced solution's nonterminals.
    pub traced_kinds: AbstractKind,
    /// The decision solution when sharded solving was requested; `None`
    /// means the traced solution doubles as the decision solution.
    pub decision: Option<AttackedSolution>,
    /// Kind facts over the decision solution's nonterminals (its own
    /// fixpoint — `VarId`s are not portable across solutions).
    pub decision_kinds: AbstractKind,
}

impl SemanticCtx {
    /// The solution verdicts are read from.
    pub fn decision_solution(&self) -> &Solution {
        match &self.decision {
            Some(att) => &att.solution,
            None => &self.traced.solution,
        }
    }

    /// The solution witnesses and renders are read from.
    pub fn traced_solution(&self) -> &Solution {
        &self.traced.solution
    }
}

impl LintContext {
    /// Builds a context with the default configuration.
    pub fn new(process: &Process, policy: &Policy) -> LintContext {
        LintContext::with_config(process, policy, LintConfig::default())
    }

    /// Builds a context with an explicit configuration.
    ///
    /// The policy is augmented with the process's `hide`-bound names
    /// (secret by construction, no entry required) — a no-op for
    /// `hide`-free processes, which keeps their diagnostics byte-stable.
    pub fn with_config(process: &Process, policy: &Policy, config: LintConfig) -> LintContext {
        let ordinals = process
            .labels()
            .into_iter()
            .enumerate()
            .map(|(i, l)| (l, i))
            .collect();
        LintContext {
            policy: policy.with_hidden_of(process),
            process: process.clone(),
            config,
            ordinals,
            semantic: OnceCell::new(),
        }
    }

    /// The process under analysis.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// The secrecy policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The run configuration.
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// The stable ordinal of a label (its position in the pre-order
    /// label traversal), if the label belongs to this process.
    pub fn ordinal(&self, l: Label) -> Option<usize> {
        self.ordinals.get(&l).copied()
    }

    /// The span for a labelled program point; falls back to the whole
    /// process for labels minted outside it (e.g. attacker-internal).
    pub fn span_of(&self, l: Label) -> Span {
        match self.ordinal(l) {
            Some(ordinal) => Span::Point { ordinal },
            None => Span::Process,
        }
    }

    /// The semantic layer, built on first call. Syntactic passes must
    /// not call this.
    pub fn semantic(&self) -> &SemanticCtx {
        self.semantic.get_or_init(|| {
            // The attacker's opaque set: bare secrets plus graded names
            // above the clearance. Identical to `secrets()` on ungraded
            // policies, so binary-lattice transcripts do not move.
            let secret = self.policy.opaque_names().into_iter().collect();
            let (traced, provenance) = analyze_with_attacker_traced(&self.process, &secret);
            let traced_kinds = AbstractKind::compute(&traced.solution, &self.policy);
            let (decision, decision_kinds) = if self.config.shards > 1 {
                let att =
                    analyze_with_attacker_parallel(&self.process, &secret, self.config.shards);
                let kinds = AbstractKind::compute(&att.solution, &self.policy);
                (Some(att), kinds)
            } else {
                (None, traced_kinds.clone())
            };
            SemanticCtx {
                traced,
                provenance,
                traced_kinds,
                decision,
                decision_kinds,
            }
        })
    }

    /// Whether the semantic layer has been built (used by the overhead
    /// bench to assert syntactic-only runs stay solver-free).
    pub fn semantic_built(&self) -> bool {
        self.semantic.get().is_some()
    }

    /// Renders a flow variable with run-stable coordinates: `ζ` entries
    /// print their label *ordinal*, not the raw (run-varying) label.
    pub fn display_flow_var(&self, fv: FlowVar) -> String {
        match fv {
            FlowVar::Zeta(l) => match self.ordinal(l) {
                Some(ordinal) => format!("ζ(ℓ#{ordinal})"),
                None => "ζ(ℓ?)".to_owned(),
            },
            FlowVar::Aux(u32::MAX) => "the attacker's knowledge".to_owned(),
            FlowVar::Aux(_) => "an embedded-value nonterminal".to_owned(),
            other => other.to_string(), // ρ(x), κ(n): already stable
        }
    }

    /// Builds a seed-rooted witness trace for `prod ∈ L(fv)` from the
    /// traced solve's provenance. Every step names the Table 2 clause or
    /// Dolev–Yao closure rule that justifies the hop.
    pub fn witness_from_flow(&self, fv: FlowVar, prod: &Prod) -> Vec<WitnessStep> {
        let sem = self.semantic();
        let sol = sem.traced_solution();
        let rendered = sol.render_production(prod, 2);
        let mut out = Vec::new();
        for step in sem.provenance.explain_steps(sol, fv, prod) {
            let at = self.display_flow_var(step.at);
            out.push(match step.kind {
                FlowStepKind::Introduced => {
                    if step.at == FlowVar::Aux(u32::MAX) {
                        WitnessStep {
                            rule: "Dolev–Yao closure (Lemma 1 attacker)",
                            detail: format!("{rendered} is seeded or synthesised in {at}"),
                        }
                    } else {
                        WitnessStep {
                            rule: "Table 2 production (constructor occurrence)",
                            detail: format!("{rendered} is produced at {at}"),
                        }
                    }
                }
                FlowStepKind::Propagated { from, via } => WitnessStep {
                    rule: rule_for_edge(via),
                    detail: format!(
                        "reaches {at} from {} via {via}",
                        self.display_flow_var(from)
                    ),
                },
                FlowStepKind::Absent => WitnessStep {
                    rule: "provenance",
                    detail: format!("{rendered} is not recorded at {at}"),
                },
                FlowStepKind::Cycle => WitnessStep {
                    rule: "provenance",
                    detail: "provenance chain closed a cycle".to_owned(),
                },
            });
        }
        out
    }
}

/// The Table 2 clause behind a propagation edge.
fn rule_for_edge(via: EdgeKind) -> &'static str {
    match via {
        EdgeKind::Sub => "Table 2 subset constraint (variable occurrence / embedded value)",
        EdgeKind::Output(_) => "Table 2 output clause (∀n ∈ ζ(chan): ζ(msg) ⊆ κ(n))",
        EdgeKind::Input(_) => "Table 2 input clause (∀n ∈ ζ(chan): κ(n) ⊆ ρ(x))",
        EdgeKind::Split => "Table 2 pair-splitting clause",
        EdgeKind::CaseSuc => "Table 2 integer-case clause",
        EdgeKind::Decrypt => "Table 2 decryption clause (key languages intersect)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::parse_process;

    #[test]
    fn context_construction_is_solver_free() {
        let p = parse_process("(new m) c<m>.0").unwrap();
        let policy = Policy::with_secrets(["m"]);
        let ctx = LintContext::new(&p, &policy);
        assert!(!ctx.semantic_built());
        assert_eq!(ctx.ordinal(p.labels()[0]), Some(0));
    }

    #[test]
    fn semantic_layer_is_built_once_on_demand() {
        let p = parse_process("(new m) c<m>.0").unwrap();
        let policy = Policy::with_secrets(["m"]);
        let ctx = LintContext::new(&p, &policy);
        let first = ctx.semantic() as *const SemanticCtx;
        let second = ctx.semantic() as *const SemanticCtx;
        assert_eq!(first, second);
        assert!(ctx.semantic_built());
    }

    #[test]
    fn witness_for_a_leaked_secret_is_seed_rooted() {
        let p = parse_process("(new m) c<m>.0").unwrap();
        let policy = Policy::with_secrets(["m"]);
        let ctx = LintContext::new(&p, &policy);
        let witness = ctx.witness_from_flow(
            FlowVar::Kappa(nuspi_syntax::Symbol::intern("c")),
            &Prod::Name(nuspi_syntax::Symbol::intern("m")),
        );
        assert!(!witness.is_empty());
        assert!(witness[0].rule.contains("production"), "{:?}", witness[0]);
        assert!(witness.last().unwrap().detail.contains("κ(c)"));
    }

    #[test]
    fn sharded_config_builds_a_separate_decision_solution() {
        let p = parse_process("(new m) c<m>.0").unwrap();
        let policy = Policy::with_secrets(["m"]);
        let cfg = LintConfig {
            shards: 4,
            ..LintConfig::default()
        };
        let ctx = LintContext::with_config(&p, &policy, cfg);
        assert!(ctx.semantic().decision.is_some());
    }
}
