//! The machine-facing serializer: a stable, hand-rolled JSON document
//! (std-only; the workspace takes no serde dependency).
//!
//! The output is the golden-file format of `tests/lint_golden.rs` and
//! the `nuspi lint --json` payload, so its byte layout is part of the
//! contract: fixed key order, two-space indentation, `\n` separators,
//! and nothing derived from hashing, label minting, or solver layout.
//! Two runs over the same process and policy produce identical bytes,
//! as do the 1-shard and 4-shard solver configurations.

use crate::diag::{Diagnostic, Severity};
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (control characters,
/// quotes, backslashes; non-ASCII passes through as UTF-8).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialises a lint report as a pretty-printed JSON document with a
/// stable byte layout.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let notes = diags
        .iter()
        .filter(|d| d.severity == Severity::Note)
        .count();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str("  \"tool\": \"nuspi-lint\",\n");
    let _ = writeln!(
        out,
        "  \"summary\": {{ \"errors\": {errors}, \"warnings\": {warnings}, \"notes\": {notes} }},"
    );
    if diags.is_empty() {
        out.push_str("  \"diagnostics\": []\n");
    } else {
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in diags.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"code\": \"{}\",", escape(d.code));
            let _ = writeln!(out, "      \"pass\": \"{}\",", escape(d.pass));
            let _ = writeln!(out, "      \"severity\": \"{}\",", d.severity);
            let _ = writeln!(
                out,
                "      \"span\": {{ \"kind\": \"{}\", \"value\": \"{}\" }},",
                d.span.kind(),
                escape(&d.span.value())
            );
            let _ = writeln!(out, "      \"message\": \"{}\",", escape(&d.message));
            if d.witness.is_empty() {
                out.push_str("      \"witness\": []\n");
            } else {
                out.push_str("      \"witness\": [\n");
                for (j, step) in d.witness.iter().enumerate() {
                    let _ = write!(
                        out,
                        "        {{ \"rule\": \"{}\", \"detail\": \"{}\" }}",
                        escape(step.rule),
                        escape(&step.detail)
                    );
                    out.push_str(if j + 1 < d.witness.len() { ",\n" } else { "\n" });
                }
                out.push_str("      ]\n");
            }
            out.push_str(if i + 1 < diags.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Serialises a lint report as a *single-line* JSON object with the
/// same fields, key order, and escaping as [`to_json`] — the embeddable
/// form used by the `nuspi-engine` JSON-lines protocol, where a report
/// must fit inside one response line. `to_json` and `to_json_compact`
/// differ only in whitespace.
pub fn to_json_compact(diags: &[Diagnostic]) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let notes = diags
        .iter()
        .filter(|d| d.severity == Severity::Note)
        .count();
    let mut out = String::new();
    out.push_str("{\"version\":1,\"tool\":\"nuspi-lint\",");
    let _ = write!(
        out,
        "\"summary\":{{\"errors\":{errors},\"warnings\":{warnings},\"notes\":{notes}}},"
    );
    out.push_str("\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"pass\":\"{}\",\"severity\":\"{}\",",
            escape(d.code),
            escape(d.pass),
            d.severity
        );
        let _ = write!(
            out,
            "\"span\":{{\"kind\":\"{}\",\"value\":\"{}\"}},\"message\":\"{}\",\"witness\":[",
            d.span.kind(),
            escape(&d.span.value()),
            escape(&d.message)
        );
        for (j, step) in d.witness.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"detail\":\"{}\"}}",
                escape(step.rule),
                escape(&step.detail)
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Span, WitnessStep};
    use nuspi_syntax::Symbol;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            code: "E001",
            pass: "confinement",
            severity: Severity::Error,
            span: Span::Channel(Symbol::intern("c")),
            message: "secret \"m\" leaks".into(),
            witness: vec![WitnessStep {
                rule: "kind classification (Definition 2)",
                detail: "kind(m) = S".into(),
            }],
        }]
    }

    #[test]
    fn escapes_quotes_and_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("ζ(ℓ#3)"), "ζ(ℓ#3)");
    }

    #[test]
    fn document_has_fixed_shape() {
        let doc = to_json(&sample());
        assert!(doc.starts_with("{\n  \"version\": 1,\n  \"tool\": \"nuspi-lint\","));
        assert!(doc.contains("\"summary\": { \"errors\": 1, \"warnings\": 0, \"notes\": 0 }"));
        assert!(doc.contains("\"span\": { \"kind\": \"channel\", \"value\": \"c\" }"));
        assert!(doc.contains("\"message\": \"secret \\\"m\\\" leaks\""));
        assert!(doc.ends_with("}\n"));
    }

    #[test]
    fn empty_report_serialises_cleanly() {
        let doc = to_json(&[]);
        assert!(doc.contains("\"diagnostics\": []"));
    }

    #[test]
    fn serialisation_is_deterministic() {
        assert_eq!(to_json(&sample()), to_json(&sample()));
    }

    #[test]
    fn compact_is_single_line_and_whitespace_equivalent() {
        for diags in [sample(), Vec::new()] {
            let compact = to_json_compact(&diags);
            assert!(!compact.contains('\n'), "{compact}");
            let pretty: String = to_json(&diags)
                .chars()
                .filter(|c| !c.is_whitespace())
                .collect();
            let squeezed: String = compact.chars().filter(|c| !c.is_whitespace()).collect();
            // Whitespace inside string literals is escaped (\n, \t), so
            // stripping raw whitespace compares the structural bytes.
            assert_eq!(pretty, squeezed);
        }
    }
}
