//! Syntactic lint passes: AST + policy only, no solver.
//!
//! | code | finding |
//! |------|---------|
//! | W101 | a restriction `(νn)P` whose name never occurs in `P` |
//! | W102 | a variable binder shadowing an enclosing restricted name |
//! | W103 | dead or redundant continuations under replication |
//! | W104 | a secret-declared name used directly as a channel subject |
//! | W105 | a policy secret that names no symbol of the process |
//!
//! All diagnostics here are [`Severity::Warning`]: none is a property
//! violation by itself, but each correlates with specification mistakes
//! in the protocol corpus (e.g. a policy entry misspelling the key it
//! was meant to protect silently weakens every semantic check).

use crate::context::LintContext;
use crate::diag::{Diagnostic, Severity, Span};
use crate::registry::{Pass, PassKind};
use nuspi_syntax::{Expr, Process, Symbol, Term, Value};
use std::collections::HashSet;

/// Every built-in syntactic pass.
pub fn passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(UnusedRestriction),
        Box::new(ShadowedRestriction),
        Box::new(ReplicatedDead),
        Box::new(SecretChannelSubject),
        Box::new(PolicyOrphan),
    ]
}

fn warn(code: &'static str, pass: &'static str, span: Span, message: String) -> Diagnostic {
    Diagnostic {
        code,
        pass,
        severity: Severity::Warning,
        span,
        message,
        witness: vec![],
    }
}

/// W101 — `(νn)P` where `n ∉ fn(P)`: the restriction protects nothing.
struct UnusedRestriction;

impl Pass for UnusedRestriction {
    fn name(&self) -> &'static str {
        "unused-restriction"
    }
    fn description(&self) -> &'static str {
        "restrictions whose bound name never occurs in their scope"
    }
    fn kind(&self) -> PassKind {
        PassKind::Syntactic
    }
    fn run(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        visit(ctx.process(), &mut |p| {
            let (name, body, kind) = match p {
                Process::Restrict { name, body } => (name, body, "restricted"),
                Process::Hide { name, body } => (name, body, "hidden"),
                _ => return,
            };
            if !body.free_names().contains(name) {
                out.push(warn(
                    "W101",
                    self.name(),
                    Span::Name(name.canonical()),
                    format!("{kind} name `{name}` is never used in its scope"),
                ));
            }
        });
        out
    }
}

/// W102 — a variable binder reusing the symbol of an enclosing
/// restriction: downstream reads of the bare symbol silently mean the
/// variable, not the (presumably secret) name.
struct ShadowedRestriction;

impl Pass for ShadowedRestriction {
    fn name(&self) -> &'static str {
        "shadowed-restriction"
    }
    fn description(&self) -> &'static str {
        "variable binders that shadow an enclosing restricted name"
    }
    fn kind(&self) -> PassKind {
        PassKind::Syntactic
    }
    fn run(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut scope = Vec::new();
        shadow_walk(ctx.process(), &mut scope, &mut out);
        out
    }
}

fn shadow_walk(p: &Process, scope: &mut Vec<Symbol>, out: &mut Vec<Diagnostic>) {
    let check = |sym: Symbol, what: &str, scope: &[Symbol], out: &mut Vec<Diagnostic>| {
        if scope.contains(&sym) {
            out.push(warn(
                "W102",
                "shadowed-restriction",
                Span::Name(sym),
                format!("{what} `{sym}` shadows a restricted name of the same symbol"),
            ));
        }
    };
    match p {
        Process::Nil => {}
        Process::Output { then, .. } | Process::Match { then, .. } => shadow_walk(then, scope, out),
        Process::Input { var, then, .. } => {
            check(var.symbol(), "input-bound variable", scope, out);
            shadow_walk(then, scope, out);
        }
        Process::Par(a, b) => {
            shadow_walk(a, scope, out);
            shadow_walk(b, scope, out);
        }
        Process::Restrict { name, body } | Process::Hide { name, body } => {
            scope.push(name.canonical());
            shadow_walk(body, scope, out);
            scope.pop();
        }
        Process::Replicate(q) => shadow_walk(q, scope, out),
        Process::Let { fst, snd, then, .. } => {
            check(fst.symbol(), "let-bound variable", scope, out);
            check(snd.symbol(), "let-bound variable", scope, out);
            shadow_walk(then, scope, out);
        }
        Process::CaseNat {
            zero, pred, succ, ..
        } => {
            check(pred.symbol(), "case-bound variable", scope, out);
            shadow_walk(zero, scope, out);
            shadow_walk(succ, scope, out);
        }
        Process::CaseDec { vars, then, .. } => {
            for v in vars {
                check(v.symbol(), "decryption-bound variable", scope, out);
            }
            shadow_walk(then, scope, out);
        }
    }
}

/// W103 — `!0` (replication of the inert process) and `!!P` (nested
/// replication): the former is dead code, the latter redundant.
struct ReplicatedDead;

impl Pass for ReplicatedDead {
    fn name(&self) -> &'static str {
        "replicated-dead"
    }
    fn description(&self) -> &'static str {
        "dead or redundant continuations under replication"
    }
    fn kind(&self) -> PassKind {
        PassKind::Syntactic
    }
    fn run(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        visit(ctx.process(), &mut |p| {
            if let Process::Replicate(body) = p {
                match body.as_ref() {
                    Process::Nil => out.push(warn(
                        "W103",
                        self.name(),
                        Span::Process,
                        "replication of the inert process `!0` is dead code".to_owned(),
                    )),
                    Process::Replicate(_) => out.push(warn(
                        "W103",
                        self.name(),
                        Span::Process,
                        "nested replication `!!P` is redundant (`!P` already \
                         provides unboundedly many copies)"
                            .to_owned(),
                    )),
                    _ => {}
                }
            }
        });
        out
    }
}

/// W104 — a secret-declared name in channel-subject position: the
/// channel's identity is then itself the secret, which Definition 4
/// leaves unconstrained but is almost always a modelling mistake when
/// combined with public peers.
struct SecretChannelSubject;

impl Pass for SecretChannelSubject {
    fn name(&self) -> &'static str {
        "secret-channel-subject"
    }
    fn description(&self) -> &'static str {
        "secret-kinded names used directly as channel subjects"
    }
    fn kind(&self) -> PassKind {
        PassKind::Syntactic
    }
    fn run(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        visit(ctx.process(), &mut |p| {
            let chan = match p {
                Process::Output { chan, .. } | Process::Input { chan, .. } => chan,
                _ => return,
            };
            if let Term::Name(n) = &chan.term {
                if ctx.policy().is_secret(n.canonical()) {
                    out.push(warn(
                        "W104",
                        "secret-channel-subject",
                        ctx.span_of(chan.label),
                        format!(
                            "secret name `{n}` is used as a channel subject; \
                             its κ component is unconstrained by confinement"
                        ),
                    ));
                }
            }
        });
        out
    }
}

/// W105 — a policy secret naming no symbol of the process: usually a
/// misspelling, and it silently weakens every semantic check.
struct PolicyOrphan;

impl Pass for PolicyOrphan {
    fn name(&self) -> &'static str {
        "policy-orphan"
    }
    fn description(&self) -> &'static str {
        "policy entries naming symbols absent from the process"
    }
    fn kind(&self) -> PassKind {
        PassKind::Syntactic
    }
    fn run(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut mentioned = HashSet::new();
        collect_symbols(ctx.process(), &mut mentioned);
        let mut orphans: Vec<Symbol> = ctx
            .policy()
            .secrets()
            .filter(|s| !mentioned.contains(s))
            .collect();
        orphans.sort_by_key(|s| s.as_str());
        orphans
            .into_iter()
            .map(|s| {
                warn(
                    "W105",
                    self.name(),
                    Span::Name(s),
                    format!(
                        "policy declares `{s}` secret, but no such symbol occurs in the process"
                    ),
                )
            })
            .collect()
    }
}

/// Pre-order process traversal.
fn visit(p: &Process, f: &mut impl FnMut(&Process)) {
    f(p);
    match p {
        Process::Nil => {}
        Process::Output { then, .. }
        | Process::Input { then, .. }
        | Process::Match { then, .. }
        | Process::Let { then, .. }
        | Process::CaseDec { then, .. } => visit(then, f),
        Process::Par(a, b) => {
            visit(a, f);
            visit(b, f);
        }
        Process::Restrict { body, .. } | Process::Hide { body, .. } => visit(body, f),
        Process::Replicate(q) => visit(q, f),
        Process::CaseNat { zero, succ, .. } => {
            visit(zero, f);
            visit(succ, f);
        }
    }
}

/// Every canonical symbol occurring in the process: names in terms
/// (including confounder binders and embedded values) and restriction
/// binders. Used to detect policy orphans and to gate the invariance
/// pass on the presence of `n*`.
pub(crate) fn collect_symbols(p: &Process, out: &mut HashSet<Symbol>) {
    fn value(w: &Value, out: &mut HashSet<Symbol>) {
        match w {
            Value::Name(n) => {
                out.insert(n.canonical());
            }
            Value::Zero => {}
            Value::Suc(inner) => value(inner, out),
            Value::Pair(a, b) => {
                value(a, out);
                value(b, out);
            }
            Value::Enc {
                payload,
                confounder,
                key,
            } => {
                out.insert(confounder.canonical());
                for w in payload {
                    value(w, out);
                }
                value(key, out);
            }
        }
    }
    fn expr(e: &Expr, out: &mut HashSet<Symbol>) {
        match &e.term {
            Term::Name(n) => {
                out.insert(n.canonical());
            }
            Term::Var(_) | Term::Zero => {}
            Term::Suc(inner) => expr(inner, out),
            Term::Pair(a, b) => {
                expr(a, out);
                expr(b, out);
            }
            Term::Enc {
                payload,
                confounder,
                key,
            } => {
                out.insert(confounder.canonical());
                for p in payload {
                    expr(p, out);
                }
                expr(key, out);
            }
            Term::Val(w) => value(w, out),
        }
    }
    visit(p, &mut |p| match p {
        Process::Output { chan, msg, .. } => {
            expr(chan, out);
            expr(msg, out);
        }
        Process::Input { chan, .. } => expr(chan, out),
        Process::Restrict { name, .. } | Process::Hide { name, .. } => {
            out.insert(name.canonical());
        }
        Process::Match { lhs, rhs, .. } => {
            expr(lhs, out);
            expr(rhs, out);
        }
        Process::Let { expr: e, .. } => expr(e, out),
        Process::CaseNat { expr: e, .. } => expr(e, out),
        Process::CaseDec { expr: e, key, .. } => {
            expr(e, out);
            expr(key, out);
        }
        Process::Nil | Process::Par(..) | Process::Replicate(_) => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_security::Policy;
    use nuspi_syntax::parse_process;

    fn lint_syntactic(src: &str, secrets: &[&str]) -> Vec<Diagnostic> {
        let p = parse_process(src).unwrap();
        let policy = Policy::with_secrets(secrets.iter().copied());
        let ctx = LintContext::new(&p, &policy);
        crate::registry::PassRegistry::syntactic_only().run(&ctx)
    }

    fn codes(d: &[Diagnostic]) -> Vec<&'static str> {
        d.iter().map(|d| d.code).collect()
    }

    #[test]
    fn unused_restriction_is_flagged() {
        let d = lint_syntactic("(new n) c<0>.0", &[]);
        assert!(codes(&d).contains(&"W101"), "{d:?}");
    }

    #[test]
    fn used_restriction_is_clean() {
        let d = lint_syntactic("(new n) c<n>.0", &[]);
        assert!(!codes(&d).contains(&"W101"), "{d:?}");
    }

    #[test]
    fn shadowing_binder_is_flagged() {
        let d = lint_syntactic("(new k) c(k). k<0>.0", &[]);
        assert!(codes(&d).contains(&"W102"), "{d:?}");
    }

    #[test]
    fn distinct_binder_is_clean() {
        let d = lint_syntactic("(new k) c(x). x<k>.0", &[]);
        assert!(!codes(&d).contains(&"W102"), "{d:?}");
    }

    #[test]
    fn replicated_nil_is_flagged() {
        let d = lint_syntactic("!0", &[]);
        assert!(codes(&d).contains(&"W103"), "{d:?}");
    }

    #[test]
    fn nested_replication_is_flagged() {
        let d = lint_syntactic("!!c(x).0", &[]);
        assert!(codes(&d).contains(&"W103"), "{d:?}");
    }

    #[test]
    fn secret_channel_subject_is_flagged_with_a_point_span() {
        let d = lint_syntactic("(new s) s<0>.0", &["s"]);
        let hit = d.iter().find(|d| d.code == "W104").expect("W104");
        assert!(matches!(hit.span, Span::Point { .. }), "{hit:?}");
    }

    #[test]
    fn policy_orphan_is_flagged() {
        let d = lint_syntactic("c<0>.0", &["kAS"]);
        assert!(codes(&d).contains(&"W105"), "{d:?}");
    }

    #[test]
    fn policy_secret_matching_a_confounder_is_not_an_orphan() {
        let d = lint_syntactic("(new m) c<{m, new r}:k>.0", &["m", "r"]);
        assert!(!codes(&d).contains(&"W105"), "{d:?}");
    }

    #[test]
    fn syntactic_passes_never_run_the_solver() {
        let p = parse_process("(new m) c<m>.0").unwrap();
        let policy = Policy::with_secrets(["m"]);
        let ctx = LintContext::new(&p, &policy);
        let _ = crate::registry::PassRegistry::syntactic_only().run(&ctx);
        assert!(!ctx.semantic_built());
    }
}
