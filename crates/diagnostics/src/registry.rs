//! The pass registry: lint passes as trait objects behind one driver.
//!
//! New passes implement [`Pass`] and register themselves; the driver
//! ([`PassRegistry::run`]) never changes. Output order is fully
//! determined by [`sort_diagnostics`] — never by registration order —
//! so registering a pass earlier or later cannot perturb golden files.

use crate::context::LintContext;
use crate::diag::{sort_diagnostics, Diagnostic};

/// Whether a pass needs the solver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PassKind {
    /// Purely syntactic: runs on the AST and policy alone.
    Syntactic,
    /// Semantic: consults the CFA solution / provenance / monitors.
    Semantic,
}

/// One lint pass.
pub trait Pass {
    /// Stable pass name (shown in rendered diagnostics).
    fn name(&self) -> &'static str;
    /// One-line description of what the pass finds.
    fn description(&self) -> &'static str;
    /// Whether the pass needs the semantic layer.
    fn kind(&self) -> PassKind;
    /// Runs the pass, producing diagnostics in any order.
    fn run(&self, ctx: &LintContext) -> Vec<Diagnostic>;
}

/// An ordered collection of passes sharing one [`LintContext`].
#[derive(Default)]
pub struct PassRegistry {
    passes: Vec<Box<dyn Pass>>,
}

impl PassRegistry {
    /// An empty registry.
    pub fn new() -> PassRegistry {
        PassRegistry::default()
    }

    /// The registry with every built-in pass.
    pub fn with_defaults() -> PassRegistry {
        let mut r = PassRegistry::new();
        for pass in crate::syntactic::passes() {
            r.register(pass);
        }
        for pass in crate::semantic::passes() {
            r.register(pass);
        }
        r
    }

    /// The registry with only the syntactic (solver-free) passes.
    pub fn syntactic_only() -> PassRegistry {
        let mut r = PassRegistry::new();
        for pass in crate::syntactic::passes() {
            r.register(pass);
        }
        r
    }

    /// Adds a pass.
    pub fn register(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// The registered passes.
    pub fn passes(&self) -> impl Iterator<Item = &dyn Pass> {
        self.passes.iter().map(|p| p.as_ref())
    }

    /// Runs every pass and returns the findings in the stable report
    /// order (severity, code, span, message).
    pub fn run(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out: Vec<Diagnostic> = self.passes.iter().flat_map(|p| p.run(ctx)).collect();
        sort_diagnostics(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Severity, Span};
    use nuspi_security::Policy;
    use nuspi_syntax::parse_process;

    struct Stub(&'static str);
    impl Pass for Stub {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn description(&self) -> &'static str {
            "test stub"
        }
        fn kind(&self) -> PassKind {
            PassKind::Syntactic
        }
        fn run(&self, _ctx: &LintContext) -> Vec<Diagnostic> {
            vec![Diagnostic {
                code: self.0,
                pass: "stub",
                severity: Severity::Warning,
                span: Span::Process,
                message: "stub finding".into(),
                witness: vec![],
            }]
        }
    }

    #[test]
    fn run_order_is_independent_of_registration_order() {
        let p = parse_process("0").unwrap();
        let policy = Policy::new();
        let ctx = LintContext::new(&p, &policy);
        let mut a = PassRegistry::new();
        a.register(Box::new(Stub("W900")))
            .register(Box::new(Stub("W100")));
        let mut b = PassRegistry::new();
        b.register(Box::new(Stub("W100")))
            .register(Box::new(Stub("W900")));
        assert_eq!(a.run(&ctx), b.run(&ctx));
    }

    #[test]
    fn default_registry_has_both_kinds() {
        let r = PassRegistry::with_defaults();
        assert!(r.passes().any(|p| p.kind() == PassKind::Syntactic));
        assert!(r.passes().any(|p| p.kind() == PassKind::Semantic));
    }

    #[test]
    fn syntactic_registry_never_builds_the_semantic_layer() {
        let p = parse_process("(new m) c<m>.0").unwrap();
        let policy = Policy::with_secrets(["m"]);
        let ctx = LintContext::new(&p, &policy);
        let _ = PassRegistry::syntactic_only().run(&ctx);
        assert!(!ctx.semantic_built());
    }
}
