//! # nuspi — static analysis for secrecy and non-interference in networks of processes
//!
//! A faithful, executable reproduction of Bodei, Degano, Nielson &
//! Riis Nielson, *"Static Analysis for Secrecy and Non-interference in
//! Networks of Processes"* (PACT 2001):
//!
//! * the **νSPI-calculus** with history-dependent (confounder-randomised)
//!   symmetric encryption — [`syntax`] and [`semantics`];
//! * the **Control Flow Analysis** of Table 2 with a polynomial-time
//!   least-solution solver over regular tree grammars — [`cfa`];
//! * **Dolev–Yao secrecy** (confinement ⟹ carefulness ⟹ no revelation;
//!   Theorems 3–4) and **message independence** (confinement + invariance
//!   ⟹ testing equivalence; Theorem 5) — [`security`];
//! * a **protocol suite** (WMF, Needham–Schroeder, Otway–Rees, Yahalom,
//!   Andrew RPC, and flawed variants) — [`protocols`];
//! * a **lint engine** turning the analyses into structured diagnostics
//!   with witness traces, plus syntactic passes and stable JSON output —
//!   [`diagnostics`] (the `nuspi lint` subcommand);
//! * a **batch analysis service**: a worker pool answering audit / lint /
//!   solve / reveals requests with a content-addressed α-invariant cache,
//!   behind a JSON-lines session — [`engine`] (the `nuspi serve`
//!   subcommand);
//! * a **dynamic backend**: bounded hedged-bisimilarity over the
//!   commitment semantics, with a Theorem 5 oracle run differentially
//!   against the static analysis and an attack-variant miner —
//!   [`equiv`] (the `nuspi equiv` subcommand).
//!
//! The [`Analyzer`] type packages the common workflows.
//!
//! # Examples
//!
//! Certify the Wide Mouthed Frog exchange (the paper's Example 1):
//!
//! ```
//! use nuspi::Analyzer;
//!
//! let analyzer = Analyzer::new().secrets(["kAS", "kBS", "kAB", "m"]);
//! let audit = analyzer.audit_source(
//!     "
//!     (new m) (new kAS) (new kBS) (
//!       ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
//!        | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
//!       | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
//!     )",
//! )?;
//! assert!(audit.is_secure());
//! # Ok::<(), nuspi::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nuspi_cfa as cfa;
pub use nuspi_diagnostics as diagnostics;
pub use nuspi_engine as engine;
pub use nuspi_equiv as equiv;
pub use nuspi_lang as lang;
pub use nuspi_net as net;
pub use nuspi_obs as obs;
pub use nuspi_protocols as protocols;
pub use nuspi_security as security;
pub use nuspi_semantics as semantics;
pub use nuspi_syntax as syntax;

pub use nuspi_cfa::{
    analyze, analyze_parallel, solve_parallel, solve_reference, solve_suite, FlowVar, ShardStats,
    Solution, SolverStats,
};
pub use nuspi_diagnostics::{lint, lint_with, Diagnostic, LintConfig, Severity};
pub use nuspi_engine::{
    AnalysisEngine, EngineConfig, EngineStats, Envelope, IntruderBudgets, Request, Response,
};
pub use nuspi_security::{
    audit, carefulness, confinement, invariance, message_independent, reveals,
    static_message_independence, Attack, Audit, AuditConfig, CarefulnessReport, ConfinementReport,
    IntruderConfig, Knowledge, Policy, StaticIndependenceReport,
};
pub use nuspi_semantics::{EvalMode, ExecConfig};
pub use nuspi_syntax::{parse_process, ParseError, Process, Symbol, Value, Var};

use std::fmt;

/// Errors surfaced by the facade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// The source text did not parse.
    Parse(ParseError),
    /// The process has free variables; the analyses need closed processes.
    OpenProcess,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::OpenProcess => write!(f, "process has free variables"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error::Parse(e)
    }
}

/// One-stop configuration for the analyses: the secrecy policy plus the
/// budgets of the dynamic checkers.
#[derive(Clone, Debug, Default)]
pub struct Analyzer {
    policy: Policy,
    exec: ExecConfig,
    intruder: IntruderConfig,
}

impl Analyzer {
    /// An analyzer with an all-public policy and default budgets.
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// Declares canonical names secret.
    pub fn secrets<I, S>(mut self, secrets: I) -> Analyzer
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        for s in secrets {
            self.policy.add_secret(s);
        }
        self
    }

    /// Uses an explicit policy.
    pub fn policy(mut self, policy: Policy) -> Analyzer {
        self.policy = policy;
        self
    }

    /// Overrides the execution budgets of the dynamic checkers.
    pub fn exec_config(mut self, exec: ExecConfig) -> Analyzer {
        self.exec = exec;
        self
    }

    /// Overrides the intruder budgets.
    pub fn intruder_config(mut self, intruder: IntruderConfig) -> Analyzer {
        self.intruder = intruder;
        self
    }

    /// The configured policy.
    pub fn policy_ref(&self) -> &Policy {
        &self.policy
    }

    /// Runs the CFA on a closed process.
    ///
    /// # Errors
    ///
    /// [`Error::OpenProcess`] if the process has free variables.
    pub fn solve(&self, p: &Process) -> Result<Solution, Error> {
        if !p.is_closed() {
            return Err(Error::OpenProcess);
        }
        Ok(analyze(p))
    }

    /// The static secrecy check (Definition 4 / Theorem 4).
    pub fn confinement(&self, p: &Process) -> ConfinementReport {
        confinement(p, &self.policy)
    }

    /// The dynamic secrecy monitor (Definition 3).
    pub fn carefulness(&self, p: &Process) -> CarefulnessReport {
        carefulness(p, &self.policy, &self.exec)
    }

    /// The bounded Dolev–Yao revelation search (Definition 5) against an
    /// intruder initially knowing the given public names.
    pub fn reveals<I, S>(&self, p: &Process, known: I, secret: Symbol) -> Option<Attack>
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        let k0 = Knowledge::from_names(known);
        reveals(p, &k0, secret, &self.intruder)
    }

    /// Runs all three secrecy checks on a closed process: the static
    /// confinement check, the dynamic carefulness monitor, and a bounded
    /// Dolev–Yao search per declared secret (the intruder starts from the
    /// process's public free names). Delegates to [`nuspi_security::audit`].
    ///
    /// # Errors
    ///
    /// [`Error::OpenProcess`] if the process has free variables.
    pub fn audit(&self, p: &Process) -> Result<Audit, Error> {
        if !p.is_closed() {
            return Err(Error::OpenProcess);
        }
        let cfg = AuditConfig {
            exec: self.exec,
            intruder: self.intruder.clone(),
        };
        Ok(audit(p, &self.policy, &cfg))
    }

    /// Parses and audits in one step.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] on malformed source, [`Error::OpenProcess`] if the
    /// parsed process is open.
    pub fn audit_source(&self, src: &str) -> Result<Audit, Error> {
        let p = parse_process(src)?;
        self.audit(&p)
    }

    /// Theorem 5's static premises for an open process `P(x)`.
    pub fn message_independence(&self, open: &Process, x: Var) -> StaticIndependenceReport {
        static_message_independence(open, x, &self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_certifies_wmf() {
        let spec = protocols::wmf::wmf();
        let analyzer = Analyzer::new().policy(spec.policy.clone());
        let audit = analyzer.audit(&spec.process).unwrap();
        assert!(audit.is_secure(), "{audit}");
    }

    #[test]
    fn audit_rejects_flawed_wmf_on_all_three_checks() {
        let spec = protocols::wmf::wmf_key_in_clear();
        let analyzer = Analyzer::new().policy(spec.policy.clone());
        let audit = analyzer.audit(&spec.process).unwrap();
        assert!(!audit.confinement.is_confined());
        assert!(!audit.carefulness.is_careful());
        assert!(!audit.attacks.is_empty());
        assert!(!audit.is_secure());
    }

    #[test]
    fn open_process_is_rejected() {
        let x = Var::fresh("x");
        let p = syntax::builder::output(
            syntax::builder::name("c"),
            syntax::builder::var(x),
            syntax::builder::nil(),
        );
        let analyzer = Analyzer::new();
        assert_eq!(analyzer.audit(&p).unwrap_err(), Error::OpenProcess);
        assert!(analyzer.solve(&p).is_err());
    }

    #[test]
    fn parse_errors_surface() {
        let analyzer = Analyzer::new();
        assert!(matches!(
            analyzer.audit_source("c<").unwrap_err(),
            Error::Parse(_)
        ));
    }

    #[test]
    fn audit_display_is_nonempty() {
        let analyzer = Analyzer::new().secrets(["m"]);
        let audit = analyzer.audit_source("(new m) c<m>.0").unwrap();
        let shown = audit.to_string();
        assert!(shown.contains("violation"));
    }

    #[test]
    fn message_independence_facade() {
        let ex = protocols::implicit_flow();
        let analyzer = Analyzer::new().policy(ex.policy.clone());
        let report = analyzer.message_independence(&ex.process, ex.var);
        assert!(!report.implies_independence());
    }
}
