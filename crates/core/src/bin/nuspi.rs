//! `nuspi` — command-line front end for the νSPI analyses.
//!
//! ```text
//! nuspi check   <file> [--secret NAME]...        audit: confinement + carefulness + intruder
//! nuspi check   <file.nu> [--json] [--shards N]  compile an annotated source program and lint it
//! nuspi analyze <file> [--secret NAME]... [--attacker] [--incremental] [--depth N] [--summary]
//!                                                print the least estimate (ρ, κ, ζ)
//! nuspi run     <file> [--steps N] [--seed N] [--classic]
//!                                                random simulation, printing the trace
//! nuspi explore <file> [--max-depth N] [--max-states N]
//!                                                bounded state-space statistics
//! nuspi explain <file> [--secret NAME]...        narrate how secrets reach public channels
//! nuspi lint    <file> [--secret NAME]... [--json] [--shards N]
//!                                                multi-pass diagnostics with witness traces
//! nuspi equiv   <left> <right> [--json]          bounded hedged-bisimilarity of two processes
//! nuspi serve   [--jobs N] [--cache-bytes N]     JSON-lines analysis service on stdin/stdout
//! nuspi serve   --listen ADDR [--cache-dir DIR]  ... or on a TCP socket, with an optional
//!                                                persistent response store
//! nuspi cache   <stats|ls|verify|compact> --cache-dir DIR
//!                                                inspect a persistent store directory
//! ```
//!
//! `<file>` may be `-` for stdin. Exit status: 0 on success/secure, 1 on
//! an insecure verdict, 2 on usage or parse errors. `serve` takes no
//! file: it reads one JSON request per line from stdin and writes one
//! JSON response per line to stdout until end of input. With `--listen`
//! the same protocol runs per TCP connection instead; stdin is held
//! open as the lifetime handle — end of stdin triggers a graceful
//! drain (stop accepting, flush in-flight responses, exit).

use nuspi::{Analyzer, EvalMode, ExecConfig, Policy};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("nuspi: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  nuspi check   <file> [--secret NAME]...
  nuspi check   <file.nu> [--json] [--shards N]
  nuspi analyze <file> [--secret NAME]... [--attacker] [--incremental] [--depth N] [--summary]
  nuspi run     <file> [--steps N] [--seed N] [--classic] [--msc]
  nuspi explore <file> [--max-depth N] [--max-states N]
  nuspi explain <file> [--secret NAME]...
  nuspi lint    <file> [--secret NAME]... [--json] [--shards N]
  nuspi equiv   <left> <right> [--json]
  nuspi serve   [--jobs N] [--cache-bytes N] [--trace FILE]
                [--listen ADDR] [--cache-dir DIR] [--max-conns N] [--idle-ms N]
                [--queue-depth N] [--store-bytes N] [--store-min-ms N]
  nuspi cache   <stats|ls|verify|compact> --cache-dir DIR";

struct Opts {
    file: Option<String>,
    secrets: Vec<String>,
    attacker: bool,
    incremental: bool,
    classic: bool,
    msc: bool,
    summary: bool,
    json: bool,
    shards: usize,
    depth: usize,
    steps: usize,
    seed: u64,
    max_depth: usize,
    max_states: usize,
    jobs: usize,
    cache_bytes: usize,
    trace: Option<String>,
    listen: Option<String>,
    cache_dir: Option<String>,
    max_conns: usize,
    idle_ms: u64,
    queue_depth: usize,
    store_bytes: u64,
    store_min_ms: u64,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        file: None,
        secrets: Vec::new(),
        attacker: false,
        incremental: false,
        classic: false,
        msc: false,
        summary: false,
        json: false,
        shards: 1,
        depth: 3,
        steps: 64,
        seed: 0,
        max_depth: 24,
        max_states: 4096,
        jobs: 0,
        cache_bytes: 0,
        trace: None,
        listen: None,
        cache_dir: None,
        max_conns: 64,
        idle_ms: 300_000,
        queue_depth: 32,
        store_bytes: 0,
        store_min_ms: 0,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match a.as_str() {
            "--secret" => o
                .secrets
                .push(it.next().ok_or("--secret needs a name")?.clone()),
            "--attacker" => o.attacker = true,
            "--incremental" => o.incremental = true,
            "--classic" => o.classic = true,
            "--msc" => o.msc = true,
            "--summary" => o.summary = true,
            "--json" => o.json = true,
            "--shards" => o.shards = (num("--shards")? as usize).max(1),
            "--depth" => o.depth = num("--depth")? as usize,
            "--steps" => o.steps = num("--steps")? as usize,
            "--seed" => o.seed = num("--seed")?,
            "--max-depth" => o.max_depth = num("--max-depth")? as usize,
            "--max-states" => o.max_states = num("--max-states")? as usize,
            "--jobs" => o.jobs = num("--jobs")? as usize,
            "--cache-bytes" => o.cache_bytes = num("--cache-bytes")? as usize,
            "--trace" => o.trace = Some(it.next().ok_or("--trace needs a file")?.clone()),
            "--listen" => o.listen = Some(it.next().ok_or("--listen needs an address")?.clone()),
            "--cache-dir" => {
                o.cache_dir = Some(it.next().ok_or("--cache-dir needs a directory")?.clone());
            }
            "--max-conns" => o.max_conns = (num("--max-conns")? as usize).max(1),
            "--idle-ms" => o.idle_ms = num("--idle-ms")?,
            "--queue-depth" => o.queue_depth = (num("--queue-depth")? as usize).max(1),
            "--store-bytes" => o.store_bytes = num("--store-bytes")?,
            "--store-min-ms" => o.store_min_ms = num("--store-min-ms")?,
            _ if a.starts_with("--") => return Err(format!("unknown flag {a}")),
            _ if o.file.is_none() => o.file = Some(a.clone()),
            _ => return Err(format!("unexpected argument {a}")),
        }
    }
    Ok(o)
}

/// `nuspi equiv <left> <right> [--json]`: bounded hedged-bisimilarity
/// through the analysis engine (one in-process worker), so the CLI, the
/// pipe service and the TCP service render the same cached body. Exit
/// status: 0 bisimilar, 1 distinguished, 3 unknown (budgets exhausted),
/// 2 usage/parse errors.
fn run_equiv(args: &[String]) -> Result<ExitCode, String> {
    let mut files: Vec<String> = Vec::new();
    let mut json = false;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            _ if a.starts_with("--") => return Err(format!("unknown flag {a} for equiv")),
            _ => files.push(a.clone()),
        }
    }
    let [left, right] = files.as_slice() else {
        return Err("equiv needs exactly <left> and <right> files".into());
    };
    let (ls, rs) = (read_source(left)?, read_source(right)?);
    let engine = nuspi::engine::AnalysisEngine::new(nuspi::engine::EngineConfig {
        jobs: 1,
        ..Default::default()
    });
    let resp = engine.submit(nuspi::engine::Request::equiv(&ls, &rs));
    if !resp.is_ok() {
        // A parse error in either file: surface the engine's message.
        return Err(resp
            .body
            .split("\"error\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap_or("equiv failed")
            .to_owned());
    }
    if json {
        println!("{}", resp.to_line());
    } else {
        print!("{}", render_equiv_body(&resp.body));
    }
    let verdict = |tag: &str| resp.body.contains(&format!("\"verdict\":\"{tag}\""));
    Ok(if verdict("bisimilar") {
        ExitCode::SUCCESS
    } else if verdict("distinguished") {
        ExitCode::FAILURE
    } else {
        ExitCode::from(3)
    })
}

/// Human rendering of an `equiv` response body.
fn render_equiv_body(body: &str) -> String {
    let field = |k: &str| {
        body.split(&format!("\"{k}\":\""))
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap_or("?")
            .to_owned()
    };
    let list = |k: &str| -> Vec<String> {
        let Some(rest) = body.split(&format!("\"{k}\":[")).nth(1) else {
            return Vec::new();
        };
        let Some(arr) = rest.split(']').next() else {
            return Vec::new();
        };
        arr.split("\",\"")
            .map(|s| s.trim_matches('"').replace("\\\"", "\""))
            .filter(|s| !s.is_empty())
            .collect()
    };
    let mut out = format!("verdict: {}\n", field("verdict"));
    match field("verdict").as_str() {
        "distinguished" => {
            out.push_str("attacker strategy:\n");
            for step in list("trace") {
                out.push_str(&format!("  {step}\n"));
            }
        }
        "unknown" => {
            out.push_str(&format!(
                "exhausted budgets: {}\n",
                list("budgets").join(", ")
            ));
        }
        _ => {}
    }
    out
}

fn read_source(file: &str) -> Result<String, String> {
    if file == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    if cmd == "help" || cmd == "--help" || cmd == "-h" {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    if cmd == "equiv" {
        // Two positional files: handled before the generic option parser
        // (which reserves the single <file> slot).
        return run_equiv(&args[1..]);
    }
    let o = parse_opts(&args[1..])?;
    if cmd == "serve" {
        if o.file.is_some() {
            return Err("serve takes no <file>; requests arrive on stdin or --listen".into());
        }
        let mut engine = nuspi::engine::AnalysisEngine::new(nuspi::engine::EngineConfig {
            jobs: o.jobs,
            cache_bytes: o.cache_bytes,
            ..Default::default()
        });
        if let Some(dir) = &o.cache_dir {
            let store = nuspi::net::DiskStore::open(nuspi::net::StoreConfig {
                dir: dir.into(),
                max_bytes: o.store_bytes,
                min_compute: std::time::Duration::from_millis(o.store_min_ms),
                fsync: true,
            })
            .map_err(|e| format!("--cache-dir {dir}: {e}"))?;
            engine.set_store(std::sync::Arc::new(store));
        }
        if o.trace.is_some() {
            nuspi::obs::enable();
        }
        if let Some(addr) = &o.listen {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("--listen {addr}: {e}"))?;
            let cfg = nuspi::net::NetConfig {
                max_connections: o.max_conns,
                queue_depth: o.queue_depth,
                idle_timeout: std::time::Duration::from_millis(o.idle_ms.max(1)),
                ..Default::default()
            };
            let server = nuspi::net::spawn(std::sync::Arc::new(engine), listener, cfg)
                .map_err(|e| format!("serve: {e}"))?;
            // Stderr, so stdout stays free for a co-located pipe client
            // and scripts can scrape the bound port (`--listen :0`).
            eprintln!("listening on {}", server.local_addr());
            // Stdin is the lifetime handle: EOF (pipe closed, ^D) means
            // drain — stop accepting, flush in-flight responses, exit.
            let _ = std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink());
            eprintln!("draining");
            server.drain();
            server.join();
        } else {
            nuspi::engine::serve(&engine, std::io::stdin().lock(), std::io::stdout().lock())
                .map_err(|e| format!("serve: {e}"))?;
        }
        if let Some(path) = &o.trace {
            nuspi::obs::disable();
            std::fs::write(path, nuspi::obs::snapshot_jsonl())
                .map_err(|e| format!("--trace {path}: {e}"))?;
            // The summary goes to stderr so response lines stay the only
            // stdout traffic.
            eprint!("{}", nuspi::obs::summary());
            eprintln!("trace written to {path}");
        }
        return Ok(ExitCode::SUCCESS);
    }
    if cmd == "cache" {
        let action = o
            .file
            .clone()
            .ok_or("cache needs an action: stats | ls | verify | compact")?;
        let dir = o.cache_dir.clone().ok_or("cache needs --cache-dir DIR")?;
        let dir = std::path::Path::new(&dir);
        let err = |e: std::io::Error| format!("cache {action}: {e}");
        return match action.as_str() {
            "stats" => {
                print!("{}", nuspi::net::inspect::stats(dir).map_err(err)?);
                Ok(ExitCode::SUCCESS)
            }
            "ls" => {
                print!("{}", nuspi::net::inspect::ls(dir).map_err(err)?);
                Ok(ExitCode::SUCCESS)
            }
            "verify" => {
                let (report, ok) = nuspi::net::inspect::verify(dir).map_err(err)?;
                print!("{report}");
                Ok(if ok {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                })
            }
            "compact" => {
                print!("{}", nuspi::net::inspect::compact(dir).map_err(err)?);
                Ok(ExitCode::SUCCESS)
            }
            other => Err(format!("unknown cache action `{other}`")),
        };
    }
    let file = o.file.clone().ok_or("missing <file>")?;
    let src = read_source(&file)?;
    if cmd == "check" && file.ends_with(".nu") {
        // Annotated-source programs go through the nuspi-lang frontend;
        // compile failures still render a report (and a JSON document
        // under --json) rather than a bare usage error.
        let report = nuspi::lang::check_with(&file, &src, o.shards);
        if o.json {
            print!("{}", nuspi::lang::check_to_json(&report));
        } else {
            print!("{}", nuspi::lang::render_check(&report));
        }
        return Ok(match report.verdict {
            nuspi::lang::Verdict::Secure => ExitCode::SUCCESS,
            nuspi::lang::Verdict::Insecure => ExitCode::FAILURE,
            nuspi::lang::Verdict::Invalid => ExitCode::from(2),
        });
    }
    let process = nuspi::parse_process(&src).map_err(|e| e.to_string())?;
    if !process.is_closed() {
        return Err("process has free variables".into());
    }
    let policy = Policy::with_secrets(o.secrets.iter().map(String::as_str));

    match cmd.as_str() {
        "check" => {
            let analyzer = Analyzer::new().policy(policy);
            let audit = analyzer.audit(&process).map_err(|e| e.to_string())?;
            println!("{audit}");
            if !audit.confinement.is_confined() {
                for v in &audit.confinement.violations {
                    println!("  static: {v}");
                }
            }
            for v in &audit.carefulness.violations {
                println!("  dynamic: {v}");
            }
            for (s, a) in &audit.attacks {
                println!("  attack on {s}:");
                for step in &a.trace {
                    println!("    - {step}");
                }
            }
            Ok(if audit.is_secure() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "analyze" => {
            if o.incremental && o.attacker {
                return Err("--incremental cannot be combined with --attacker".into());
            }
            let solution = if o.attacker {
                let secret = policy.secrets().collect();
                nuspi_cfa::analyze_with_attacker(&process, &secret).solution
            } else if o.incremental {
                // One-shot runs start cold, but the path (component
                // digesting + cached re-stitching) is the same one
                // `nuspi serve`'s solve_incremental op keeps warm.
                let (solution, inc) = nuspi_cfa::IncrementalSolver::new(o.shards).solve(&process);
                eprintln!(
                    "-- incremental: {} components, {} reused, {} solved",
                    inc.components, inc.reuse_hits, inc.reuse_misses
                );
                solution
            } else {
                nuspi::analyze(&process)
            };
            if o.summary {
                let mut channels = solution.channels();
                channels.sort_by_key(|c| c.as_str());
                println!(
                    "{:<16} {:>7} {:>9} {:>11} {:>13}",
                    "channel", "empty", "finite", "min height", "values (≤h4)"
                );
                for c in channels {
                    let fv = nuspi::FlowVar::Kappa(c);
                    println!(
                        "{:<16} {:>7} {:>9} {:>11} {:>13}",
                        c.as_str(),
                        solution.is_empty_lang(fv),
                        solution.is_finite_lang(fv),
                        solution
                            .min_height(fv)
                            .map(|h| h.to_string())
                            .unwrap_or_else(|| "-".to_owned()),
                        solution.count_upto(fv, 4, 9999),
                    );
                }
            } else {
                print!("{}", solution.render_estimate(o.depth));
            }
            let st = solution.stats();
            println!(
                "-- {} flow vars, {} productions, {} edges, {} conditional firings",
                st.flow_vars, st.productions, st.edges, st.conditional_firings
            );
            Ok(ExitCode::SUCCESS)
        }
        "run" => {
            let cfg = ExecConfig {
                mode: if o.classic {
                    EvalMode::ClassicSpi
                } else {
                    EvalMode::NuSpi
                },
                ..ExecConfig::default()
            };
            let mut rng = nuspi::semantics::SplitMix64::seed_from_u64(o.seed);
            let trace = nuspi::semantics::run_random(&process, o.steps, &cfg, &mut rng);
            if o.msc {
                print!("{}", nuspi::semantics::render_msc(&trace));
                return Ok(ExitCode::SUCCESS);
            }
            for (i, step) in trace.steps.iter().enumerate() {
                for out in &step.outputs {
                    println!("step {i}: {} ! {}", out.channel, out.value);
                }
                if step.outputs.is_empty() {
                    println!("step {i}: τ");
                }
            }
            if let Some(end) = trace.end {
                println!("-- {} steps, final: {end}", trace.steps.len());
            }
            Ok(ExitCode::SUCCESS)
        }
        "explore" => {
            let cfg = ExecConfig {
                max_depth: o.max_depth,
                max_states: o.max_states,
                ..ExecConfig::default()
            };
            let mut barbs = std::collections::BTreeSet::new();
            let stats = nuspi::semantics::explore_tau(&process, &cfg, |_, cs| {
                for c in cs {
                    if let Some(ch) = c.action.channel() {
                        let dir = if matches!(c.action, nuspi::semantics::Action::In(_)) {
                            "?"
                        } else {
                            "!"
                        };
                        barbs.insert(format!("{}{dir}", ch.canonical()));
                    }
                }
                true
            });
            println!(
                "states: {}, transitions: {}, truncated: {}",
                stats.states, stats.transitions, stats.truncated
            );
            println!(
                "observable barbs: {}",
                barbs.into_iter().collect::<Vec<_>>().join(", ")
            );
            Ok(ExitCode::SUCCESS)
        }
        "explain" => {
            let secret: std::collections::HashSet<_> = policy.secrets().collect();
            let (att, provenance) = nuspi_cfa::analyze_with_attacker_traced(&process, &secret);
            let kinds = nuspi::security::AbstractKind::compute(&att.solution, &policy);
            let mut flagged = 0;
            let mut channels = att.solution.channels();
            channels.sort_by_key(|c| c.as_str());
            for chan in channels {
                if !policy.is_public(chan) || chan == nuspi_cfa::attacker::attacker_name() {
                    continue;
                }
                let fv = nuspi::FlowVar::Kappa(chan);
                let mut prods: Vec<_> = att.solution.prods_of(fv).iter().cloned().collect();
                prods.sort_by_key(|p| format!("{p:?}"));
                for prod in prods {
                    // Report the root causes, not attacker-recombined
                    // junk: secret names, and ciphertexts minted by the
                    // process itself.
                    let interesting = match &prod {
                        nuspi_cfa::Prod::Name(_) => true,
                        nuspi_cfa::Prod::Enc { confounder, .. } => {
                            *confounder != nuspi_cfa::attacker::attacker_confounder()
                        }
                        _ => false,
                    };
                    if !interesting || !kinds.facts_of_prod(&prod, &policy).may_secret {
                        continue;
                    }
                    flagged += 1;
                    println!(
                        "secret-kind value {} may reach public channel {chan}:",
                        att.solution.render_production(&prod, 3)
                    );
                    for line in provenance.explain(&att.solution, fv, &prod) {
                        println!("  {line}");
                    }
                    println!();
                }
            }
            if flagged == 0 {
                println!("no secret-kind value reaches any public channel (confined).");
                Ok(ExitCode::SUCCESS)
            } else {
                println!("{flagged} flow(s) flagged.");
                Ok(ExitCode::FAILURE)
            }
        }
        "lint" => {
            let cfg = nuspi::LintConfig {
                shards: o.shards,
                ..nuspi::LintConfig::default()
            };
            let diags = nuspi::lint_with(&process, &policy, cfg);
            if o.json {
                print!("{}", nuspi::diagnostics::to_json(&diags));
            } else {
                print!("{}", nuspi::diagnostics::render_report(&diags));
            }
            Ok(
                if diags.iter().any(|d| d.severity == nuspi::Severity::Error) {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                },
            )
        }
        other => Err(format!("unknown command {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_opts_collects_secrets_and_flags() {
        let o = parse_opts(&s(&[
            "file.nuspi",
            "--secret",
            "k",
            "--secret",
            "m",
            "--attacker",
            "--depth",
            "5",
        ]))
        .unwrap();
        assert_eq!(o.file.as_deref(), Some("file.nuspi"));
        assert_eq!(o.secrets, vec!["k", "m"]);
        assert!(o.attacker);
        assert_eq!(o.depth, 5);
    }

    #[test]
    fn parse_opts_reads_serve_flags() {
        let o = parse_opts(&s(&["--jobs", "4", "--cache-bytes", "1048576"])).unwrap();
        assert_eq!(o.jobs, 4);
        assert_eq!(o.cache_bytes, 1 << 20);
        assert!(o.file.is_none());
        // serve rejects a stray file argument instead of ignoring it.
        assert!(run(&s(&["serve", "some-file"])).is_err());
    }

    #[test]
    fn parse_opts_reads_net_and_store_flags() {
        let o = parse_opts(&s(&[
            "--listen",
            "127.0.0.1:0",
            "--cache-dir",
            "/tmp/x",
            "--max-conns",
            "8",
            "--idle-ms",
            "1000",
            "--queue-depth",
            "4",
            "--store-bytes",
            "65536",
            "--store-min-ms",
            "2",
        ]))
        .unwrap();
        assert_eq!(o.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.cache_dir.as_deref(), Some("/tmp/x"));
        assert_eq!(o.max_conns, 8);
        assert_eq!(o.idle_ms, 1000);
        assert_eq!(o.queue_depth, 4);
        assert_eq!(o.store_bytes, 65536);
        assert_eq!(o.store_min_ms, 2);
        assert!(parse_opts(&s(&["--listen"])).is_err());
        assert!(parse_opts(&s(&["--cache-dir"])).is_err());
    }

    #[test]
    fn cache_subcommand_inspects_a_store() {
        let dir = std::env::temp_dir().join(format!("nuspi-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // An empty store is valid once opened (header-only log).
        {
            use nuspi::engine::TierTwoCache as _;
            let store = nuspi::net::DiskStore::open(nuspi::net::StoreConfig::at(&dir)).unwrap();
            store.store(42, "body", std::time::Duration::from_millis(1));
        }
        let d = dir.to_str().unwrap();
        assert_eq!(
            run(&s(&["cache", "stats", "--cache-dir", d])).unwrap(),
            ExitCode::SUCCESS
        );
        assert_eq!(
            run(&s(&["cache", "verify", "--cache-dir", d])).unwrap(),
            ExitCode::SUCCESS
        );
        assert_eq!(
            run(&s(&["cache", "ls", "--cache-dir", d])).unwrap(),
            ExitCode::SUCCESS
        );
        assert_eq!(
            run(&s(&["cache", "compact", "--cache-dir", d])).unwrap(),
            ExitCode::SUCCESS
        );
        assert!(run(&s(&["cache", "bogus", "--cache-dir", d])).is_err());
        assert!(run(&s(&["cache", "stats"])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_opts_rejects_unknown_flags() {
        assert!(parse_opts(&s(&["f", "--bogus"])).is_err());
        assert!(parse_opts(&s(&["f", "--secret"])).is_err());
        assert!(parse_opts(&s(&["f", "--depth", "x"])).is_err());
        assert!(parse_opts(&s(&["a", "b"])).is_err());
    }

    #[test]
    fn run_requires_command_and_file() {
        assert!(run(&s(&[])).is_err());
        assert!(run(&s(&["check"])).is_err());
        assert!(run(&s(&["bogus-cmd", "/nonexistent"])).is_err());
    }

    #[test]
    fn check_command_end_to_end() {
        let dir = std::env::temp_dir().join("nuspi-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.nuspi");
        std::fs::write(&good, "(new k) (new s) net<{s, new r}:k>.0").unwrap();
        let code = run(&s(&[
            "check",
            good.to_str().unwrap(),
            "--secret",
            "k",
            "--secret",
            "s",
        ]))
        .unwrap();
        assert_eq!(code, ExitCode::SUCCESS);

        let bad = dir.join("bad.nuspi");
        std::fs::write(&bad, "(new s) net<s>.0").unwrap();
        let code = run(&s(&["check", bad.to_str().unwrap(), "--secret", "s"])).unwrap();
        assert_eq!(code, ExitCode::FAILURE);
    }

    #[test]
    fn check_command_routes_nu_files_through_the_lang_frontend() {
        let dir = std::env::temp_dir().join("nuspi-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.nu");
        std::fs::write(&clean, "func main() {\n  ch := make(chan)\n  ch <- 1\n}\n").unwrap();
        assert_eq!(
            run(&s(&["check", clean.to_str().unwrap()])).unwrap(),
            ExitCode::SUCCESS
        );

        let leak = dir.join("leak.nu");
        std::fs::write(
            &leak,
            "func main() {\n  //nuspi::sink::{}\n  out := make(chan)\n  //nuspi::label::{high}\n  pin := 4\n  out <- pin\n}\n",
        )
        .unwrap();
        assert_eq!(
            run(&s(&["check", leak.to_str().unwrap()])).unwrap(),
            ExitCode::FAILURE
        );
        assert_eq!(
            run(&s(&[
                "check",
                leak.to_str().unwrap(),
                "--json",
                "--shards",
                "2"
            ]))
            .unwrap(),
            ExitCode::FAILURE
        );

        let broken = dir.join("broken.nu");
        std::fs::write(&broken, "func main( {").unwrap();
        assert_eq!(
            run(&s(&["check", broken.to_str().unwrap()])).unwrap(),
            ExitCode::from(2)
        );
    }

    #[test]
    fn analyze_and_explore_commands_run() {
        let dir = std::env::temp_dir().join("nuspi-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("analyze.nuspi");
        std::fs::write(&f, "c<m>.0 | c(x).d<x>.0").unwrap();
        assert_eq!(
            run(&s(&["analyze", f.to_str().unwrap()])).unwrap(),
            ExitCode::SUCCESS
        );
        assert_eq!(
            run(&s(&["analyze", f.to_str().unwrap(), "--attacker"])).unwrap(),
            ExitCode::SUCCESS
        );
        assert_eq!(
            run(&s(&["analyze", f.to_str().unwrap(), "--incremental"])).unwrap(),
            ExitCode::SUCCESS
        );
        assert!(run(&s(&[
            "analyze",
            f.to_str().unwrap(),
            "--incremental",
            "--attacker"
        ]))
        .is_err());
        assert_eq!(
            run(&s(&["explore", f.to_str().unwrap(), "--max-depth", "4"])).unwrap(),
            ExitCode::SUCCESS
        );
        assert_eq!(
            run(&s(&[
                "run",
                f.to_str().unwrap(),
                "--steps",
                "4",
                "--seed",
                "1"
            ]))
            .unwrap(),
            ExitCode::SUCCESS
        );
    }

    #[test]
    fn explain_command_narrates_leaks() {
        let dir = std::env::temp_dir().join("nuspi-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("leaky.nuspi");
        std::fs::write(&f, "(new sec) (a<sec>.0 | a(x).b<x>.0)").unwrap();
        let code = run(&s(&["explain", f.to_str().unwrap(), "--secret", "sec"])).unwrap();
        assert_eq!(code, ExitCode::FAILURE);
        let g = dir.join("tight.nuspi");
        std::fs::write(&g, "(new k) (new sec) a<{sec, new r}:k>.0").unwrap();
        let code = run(&s(&[
            "explain",
            g.to_str().unwrap(),
            "--secret",
            "sec",
            "--secret",
            "k",
        ]))
        .unwrap();
        assert_eq!(code, ExitCode::SUCCESS);
    }

    #[test]
    fn lint_command_reports_and_sets_exit_code() {
        let dir = std::env::temp_dir().join("nuspi-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("lint-bad.nuspi");
        std::fs::write(&bad, "(new m) c<m>.0").unwrap();
        for extra in [&[][..], &["--json"][..], &["--shards", "4"][..]] {
            let mut args = s(&["lint", bad.to_str().unwrap(), "--secret", "m"]);
            args.extend(s(extra));
            assert_eq!(run(&args).unwrap(), ExitCode::FAILURE);
        }
        let good = dir.join("lint-good.nuspi");
        std::fs::write(&good, "(new k) (new m) c<{m, new r}:k>.0").unwrap();
        let code = run(&s(&[
            "lint",
            good.to_str().unwrap(),
            "--secret",
            "k",
            "--secret",
            "m",
        ]))
        .unwrap();
        assert_eq!(code, ExitCode::SUCCESS);
    }

    #[test]
    fn open_processes_are_rejected() {
        let dir = std::env::temp_dir().join("nuspi-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("open.nuspi");
        // `x` free: builder-level programs can be open, but files cannot.
        std::fs::write(&f, "c<0>.0").unwrap();
        assert!(run(&s(&["check", f.to_str().unwrap()])).is_ok());
        let g = dir.join("garbage.nuspi");
        std::fs::write(&g, "c<").unwrap();
        assert!(run(&s(&["check", g.to_str().unwrap()])).is_err());
    }
}
