//! Global string interning.
//!
//! Every identifier in a νSPI program — the base of a [name](crate::Name),
//! the display name of a [variable](crate::Var) — is interned once into a
//! [`Symbol`]: a `Copy` handle that compares, hashes and orders in O(1).
//!
//! The interner is a process-wide table. This matches the paper's treatment
//! of *canonical names*: the canonical representative `⌊aᵢ⌋` of every
//! α-variant of `a` is the single interned base symbol `a`, so canonical
//! identity is pointer identity here.
//!
//! # Examples
//!
//! ```
//! use nuspi_syntax::Symbol;
//!
//! let a = Symbol::intern("kAS");
//! let b = Symbol::intern("kAS");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "kAS");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string: the canonical identity of an identifier.
///
/// Symbols are cheap to copy and compare. Two symbols are equal exactly when
/// the strings they were interned from are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its canonical [`Symbol`].
    ///
    /// Idempotent: interning the same string twice yields the same symbol.
    pub fn intern(s: &str) -> Symbol {
        let mut i = interner().lock().expect("interner poisoned");
        if let Some(&id) = i.map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(i.strings.len()).expect("interner full");
        // Interned strings live for the whole process; leaking gives us
        // 'static borrows without unsafe.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        i.map.insert(leaked, id);
        i.strings.push(leaked);
        Symbol(id)
    }

    /// The string this symbol was interned from.
    pub fn as_str(self) -> &'static str {
        let i = interner().lock().expect("interner poisoned");
        i.strings[self.0 as usize]
    }

    /// A dense numeric id, usable as an index into side tables.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    #[test]
    fn intern_is_idempotent() {
        assert_eq!(Symbol::intern("x"), Symbol::intern("x"));
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::intern("alpha"), Symbol::intern("beta"));
    }

    #[test]
    fn as_str_round_trips() {
        let s = Symbol::intern("roundtrip_me");
        assert_eq!(s.as_str(), "roundtrip_me");
    }

    #[test]
    fn display_matches_source() {
        assert_eq!(Symbol::intern("chan").to_string(), "chan");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Symbol::intern("d")).is_empty());
    }

    #[test]
    fn equal_symbols_hash_equal() {
        let h = |s: Symbol| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(Symbol::intern("hh")), h(Symbol::intern("hh")));
    }

    #[test]
    fn from_str_impl() {
        let s: Symbol = "conv".into();
        assert_eq!(s, Symbol::intern("conv"));
    }

    #[test]
    fn empty_string_interns() {
        assert_eq!(Symbol::intern("").as_str(), "");
    }

    #[test]
    fn many_symbols_stay_distinct() {
        let syms: Vec<Symbol> = (0..200).map(|i| Symbol::intern(&format!("s{i}"))).collect();
        for (i, a) in syms.iter().enumerate() {
            for (j, b) in syms.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }
}
