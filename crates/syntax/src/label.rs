//! Program-point labels.
//!
//! Every occurrence of a term in a νSPI program carries a label `l ∈ L`
//! (Definition 1). Labels "are nothing but explicit notations for program
//! points"; here they are dense `u32` handles minted from a global counter,
//! so every expression occurrence in the process image is unique — exactly
//! the disjointness Proposition 1 of the paper assumes when composing a
//! process with an attacker.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// A label on a term occurrence: the `l` in `M^l`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(u32);

static NEXT: AtomicU32 = AtomicU32::new(0);

impl Label {
    /// Mints a label never returned before in this process.
    pub fn fresh() -> Label {
        Label(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw id, usable as an index into side tables.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_labels_are_distinct() {
        let a = Label::fresh();
        let b = Label::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn labels_are_copy_and_hashable() {
        let l = Label::fresh();
        let copy = l;
        let mut set = std::collections::HashSet::new();
        set.insert(l);
        assert!(set.contains(&copy));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Label::fresh().to_string().is_empty());
    }
}
