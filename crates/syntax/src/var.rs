//! Variables.
//!
//! Unlike the π-calculus, νSPI keeps names and variables distinct
//! (Definition 1). A [`Var`] pairs a display symbol with a globally unique
//! binder id: every binding occurrence (input prefix, `let`, `case`) gets
//! its own id, so the abstract environment `ρ : V → ℘(Val)` of the CFA can
//! be indexed per-binder without α-collisions, and Proposition 1's
//! "variables occurring inside Q do not occur inside P" holds by
//! construction for independently built processes.

use crate::Symbol;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// A νSPI variable: display symbol plus unique binder id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var {
    sym: Symbol,
    id: u32,
}

static NEXT: AtomicU32 = AtomicU32::new(0);

impl Var {
    /// A fresh variable (unique binder id) displayed as `sym`.
    pub fn fresh(sym: impl Into<Symbol>) -> Var {
        Var {
            sym: sym.into(),
            id: NEXT.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The symbol the variable is displayed as.
    pub fn symbol(self) -> Symbol {
        self.sym
    }

    /// The unique binder id.
    pub fn id(self) -> u32 {
        self.id
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sym)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({}.{})", self.sym, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_differ_even_with_same_symbol() {
        let x1 = Var::fresh("x");
        let x2 = Var::fresh("x");
        assert_ne!(x1, x2);
        assert_eq!(x1.symbol(), x2.symbol());
    }

    #[test]
    fn display_uses_symbol() {
        assert_eq!(Var::fresh("msg").to_string(), "msg");
    }

    #[test]
    fn var_is_hashable() {
        let v = Var::fresh("h");
        let mut set = std::collections::HashSet::new();
        set.insert(v);
        assert!(set.contains(&v));
    }
}
