//! # nuspi-syntax — syntax of the νSPI-calculus
//!
//! The νSPI-calculus (Bodei, Degano, Nielson & Riis Nielson, *Static
//! Analysis for Secrecy and Non-interference in Networks of Processes*,
//! PACT 2001) is a call-by-value spi-calculus in which every encryption
//! generates a fresh *confounder*, modelling symmetric cryptosystems that
//! randomise each ciphertext (e.g. DES in a chained mode with a random IV).
//!
//! This crate provides:
//!
//! * interned [`Symbol`]s, stable [`Name`]s (`⌊aᵢ⌋`-style canonical
//!   representatives), binder-unique [`Var`]iables and program-point
//!   [`Label`]s;
//! * the full labelled AST of Definition 1: [`Expr`], [`Term`],
//!   [`Process`], and concrete [`Value`]s;
//! * a [`builder`] DSL, a concrete-syntax [parser](parse_process) and a
//!   pretty-printer ([`std::fmt::Display`] on every node).
//!
//! # Examples
//!
//! ```
//! use nuspi_syntax::parse_process;
//!
//! // A sends m under k; B decrypts and forwards on d.
//! let p = parse_process(
//!     "(new k) (c<{m, new r}:k>.0 | c(x). case x of {y}:k in d<y>.0)",
//! )?;
//! assert!(p.is_closed());
//! assert_eq!(p.free_names().len(), 3); // c, m, d
//! # Ok::<(), nuspi_syntax::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alpha;
mod ast;
pub mod builder;
mod intern;
mod label;
mod name;
mod parser;
mod print;
mod stable_hash;
mod value;
mod var;

pub use alpha::{alpha_equivalent, alpha_hash, canonical_digest};
pub use ast::{Expr, Process, Term};
pub use intern::Symbol;
pub use label::Label;
pub use name::Name;
pub use parser::{parse_expr, parse_process, ParseError};
pub use stable_hash::{Digest128, StableHasher, StableHasher128};
pub use value::Value;
pub use var::Var;
