//! Concrete values.
//!
//! Values `w, v ::= n | pair(w,w′) | 0 | suc(w) | enc{w₁,…,wₖ,r}_{w₀}`
//! (Definition 1) are the results of the call-by-value evaluation relation
//! `⇓`. They are immutable trees shared through [`Rc`], so substitution and
//! knowledge-set bookkeeping never copy subtrees.
//!
//! [`Value::canonicalize`] implements the extension of `⌊·⌋` to values: it
//! replaces every indexed name with its canonical representative. The CFA
//! and the Dolev–Yao machinery reason over canonical values only.

use crate::{Name, Symbol};
use std::fmt;
use std::rc::Rc;

/// A fully evaluated νSPI value.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Value {
    /// A name `n`.
    Name(Name),
    /// The number `0`.
    Zero,
    /// A successor `suc(w)`.
    Suc(Rc<Value>),
    /// A pair `pair(w, w′)`.
    Pair(Rc<Value>, Rc<Value>),
    /// A ciphertext `enc{w₁,…,wₖ,r}_{w₀}`: payload `w₁…wₖ`, confounder `r`,
    /// key `w₀`. The confounder is the freshly generated initialisation
    /// vector that makes every encryption distinct.
    Enc {
        /// The encrypted payload `w₁,…,wₖ`.
        payload: Vec<Rc<Value>>,
        /// The confounder (initialisation vector) `r`.
        confounder: Name,
        /// The symmetric key `w₀`.
        key: Rc<Value>,
    },
}

impl Value {
    /// The value `n` for a name.
    pub fn name(n: impl Into<Name>) -> Rc<Value> {
        Rc::new(Value::Name(n.into()))
    }

    /// The value `0`.
    pub fn zero() -> Rc<Value> {
        Rc::new(Value::Zero)
    }

    /// The value `suc(w)`.
    pub fn suc(w: Rc<Value>) -> Rc<Value> {
        Rc::new(Value::Suc(w))
    }

    /// The numeral `sucⁿ(0)`.
    pub fn numeral(n: u32) -> Rc<Value> {
        let mut v = Value::zero();
        for _ in 0..n {
            v = Value::suc(v);
        }
        v
    }

    /// The value `pair(a, b)`.
    pub fn pair(a: Rc<Value>, b: Rc<Value>) -> Rc<Value> {
        Rc::new(Value::Pair(a, b))
    }

    /// The ciphertext `enc{payload…, confounder}_key`.
    pub fn enc(payload: Vec<Rc<Value>>, confounder: Name, key: Rc<Value>) -> Rc<Value> {
        Rc::new(Value::Enc {
            payload,
            confounder,
            key,
        })
    }

    /// `⌊w⌋`: replaces every name by its canonical representative,
    /// structurally. Returns a canonical value (`canonicalize` is
    /// idempotent).
    pub fn canonicalize(&self) -> Rc<Value> {
        match self {
            Value::Name(n) => Value::name(Name::global(n.canonical())),
            Value::Zero => Value::zero(),
            Value::Suc(w) => Value::suc(w.canonicalize()),
            Value::Pair(a, b) => Value::pair(a.canonicalize(), b.canonicalize()),
            Value::Enc {
                payload,
                confounder,
                key,
            } => Value::enc(
                payload.iter().map(|w| w.canonicalize()).collect(),
                Name::global(confounder.canonical()),
                key.canonicalize(),
            ),
        }
    }

    /// Whether `⌊w⌋ = w`, i.e. every name in the value is source-written.
    pub fn is_canonical(&self) -> bool {
        match self {
            Value::Name(n) => n.is_source(),
            Value::Zero => true,
            Value::Suc(w) => w.is_canonical(),
            Value::Pair(a, b) => a.is_canonical() && b.is_canonical(),
            Value::Enc {
                payload,
                confounder,
                key,
            } => {
                confounder.is_source()
                    && key.is_canonical()
                    && payload.iter().all(|w| w.is_canonical())
            }
        }
    }

    /// Collects every name occurring in the value (confounders included)
    /// into `out`.
    pub fn names_into(&self, out: &mut Vec<Name>) {
        match self {
            Value::Name(n) => out.push(*n),
            Value::Zero => {}
            Value::Suc(w) => w.names_into(out),
            Value::Pair(a, b) => {
                a.names_into(out);
                b.names_into(out);
            }
            Value::Enc {
                payload,
                confounder,
                key,
            } => {
                out.push(*confounder);
                key.names_into(out);
                for w in payload {
                    w.names_into(out);
                }
            }
        }
    }

    /// Every name occurring in the value.
    pub fn names(&self) -> Vec<Name> {
        let mut out = Vec::new();
        self.names_into(&mut out);
        out
    }

    /// Every canonical name occurring in the value.
    pub fn canonical_names(&self) -> Vec<Symbol> {
        self.names().into_iter().map(Name::canonical).collect()
    }

    /// Whether `name` occurs anywhere in the value.
    pub fn contains_name(&self, name: Name) -> bool {
        match self {
            Value::Name(n) => *n == name,
            Value::Zero => false,
            Value::Suc(w) => w.contains_name(name),
            Value::Pair(a, b) => a.contains_name(name) || b.contains_name(name),
            Value::Enc {
                payload,
                confounder,
                key,
            } => {
                *confounder == name
                    || key.contains_name(name)
                    || payload.iter().any(|w| w.contains_name(name))
            }
        }
    }

    /// The height of the value tree (a name or `0` has height 1).
    pub fn height(&self) -> usize {
        match self {
            Value::Name(_) | Value::Zero => 1,
            Value::Suc(w) => 1 + w.height(),
            Value::Pair(a, b) => 1 + a.height().max(b.height()),
            Value::Enc { payload, key, .. } => {
                1 + payload
                    .iter()
                    .map(|w| w.height())
                    .chain(std::iter::once(key.height()))
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    /// Reads the value back as a natural number, if it is a numeral.
    pub fn as_numeral(&self) -> Option<u32> {
        match self {
            Value::Zero => Some(0),
            Value::Suc(w) => w.as_numeral().map(|n| n + 1),
            _ => None,
        }
    }

    /// The name, if the value is one. Channels must be names, so the
    /// commitment relation uses this to decide whether a channel position
    /// is runnable.
    pub fn as_name(&self) -> Option<Name> {
        match self {
            Value::Name(n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Name(n) => write!(f, "{n}"),
            Value::Zero => write!(f, "0"),
            Value::Suc(w) => write!(f, "suc({w})"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::Enc {
                payload,
                confounder,
                key,
            } => {
                write!(f, "{{")?;
                for (i, w) in payload.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{w}")?;
                }
                if !payload.is_empty() {
                    write!(f, ", ")?;
                }
                write!(f, "{confounder}}}:{key}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeral_round_trips() {
        for n in 0..6 {
            assert_eq!(Value::numeral(n).as_numeral(), Some(n));
        }
    }

    #[test]
    fn non_numeral_is_none() {
        assert_eq!(Value::name("a").as_numeral(), None);
        assert_eq!(Value::pair(Value::zero(), Value::zero()).as_numeral(), None);
    }

    #[test]
    fn canonicalize_strips_indices() {
        let fresh = Name::global("r").freshen();
        let v = Value::enc(vec![Value::zero()], fresh, Value::name("k"));
        let c = v.canonicalize();
        assert!(c.is_canonical());
        match &*c {
            Value::Enc { confounder, .. } => assert!(confounder.is_source()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let v = Value::pair(
            Value::name(Name::global("a").freshen()),
            Value::suc(Value::zero()),
        );
        let once = v.canonicalize();
        let twice = once.canonicalize();
        assert_eq!(once, twice);
    }

    #[test]
    fn equality_distinguishes_confounders() {
        let k = Value::name("k");
        let e1 = Value::enc(vec![Value::zero()], Name::global("r").freshen(), k.clone());
        let e2 = Value::enc(vec![Value::zero()], Name::global("r").freshen(), k);
        assert_ne!(e1, e2, "fresh confounders must distinguish ciphertexts");
        assert_eq!(
            e1.canonicalize(),
            e2.canonicalize(),
            "canonical values from the same site coincide"
        );
    }

    #[test]
    fn contains_name_finds_nested() {
        let m = Name::global("m");
        let v = Value::enc(
            vec![Value::pair(Value::name(m), Value::zero())],
            Name::global("r"),
            Value::name("k"),
        );
        assert!(v.contains_name(m));
        assert!(!v.contains_name(Name::global("absent")));
    }

    #[test]
    fn names_collects_confounders_and_keys() {
        let v = Value::enc(vec![Value::name("a")], Name::global("r"), Value::name("k"));
        let names = v.names();
        assert!(names.contains(&Name::global("a")));
        assert!(names.contains(&Name::global("r")));
        assert!(names.contains(&Name::global("k")));
    }

    #[test]
    fn height_of_nested() {
        assert_eq!(Value::zero().height(), 1);
        assert_eq!(Value::numeral(3).height(), 4);
        let v = Value::pair(Value::numeral(2), Value::zero());
        assert_eq!(v.height(), 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::numeral(2).to_string(), "suc(suc(0))");
        assert_eq!(
            Value::pair(Value::name("a"), Value::name("b")).to_string(),
            "(a, b)"
        );
        let e = Value::enc(vec![Value::zero()], Name::global("r"), Value::name("k"));
        assert_eq!(e.to_string(), "{0, r}:k");
    }

    #[test]
    fn empty_payload_enc_displays() {
        let e = Value::enc(vec![], Name::global("r"), Value::name("k"));
        assert_eq!(e.to_string(), "{r}:k");
    }
}
