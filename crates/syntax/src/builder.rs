//! A small construction DSL for νSPI programs.
//!
//! Each expression builder mints a fresh [`Label`](crate::Label), so a
//! process assembled with these functions is correctly labelled for the
//! Control Flow Analysis without further bookkeeping.
//!
//! # Examples
//!
//! A server that forwards whatever it hears on `a` to `b`:
//!
//! ```
//! use nuspi_syntax::{builder as b, Var};
//!
//! let x = Var::fresh("x");
//! let relay = b::input(b::name("a"), x, b::output(b::name("b"), b::var(x), b::nil()));
//! assert!(relay.is_closed());
//! ```

use crate::{Expr, Name, Process, Term, Value, Var};
use std::rc::Rc;

/// The expression `n^l` for a (source-written) name `n`.
pub fn name(n: &str) -> Expr {
    Expr::new(Term::Name(Name::global(n)))
}

/// The expression `n^l` for an already constructed name.
pub fn name_expr(n: Name) -> Expr {
    Expr::new(Term::Name(n))
}

/// The expression `x^l` for a variable.
pub fn var(x: Var) -> Expr {
    Expr::new(Term::Var(x))
}

/// The expression `0^l`.
pub fn zero() -> Expr {
    Expr::new(Term::Zero)
}

/// The expression `suc(E)^l`.
pub fn suc(e: Expr) -> Expr {
    Expr::new(Term::Suc(Box::new(e)))
}

/// The numeral `sucⁿ(0)` as an expression.
pub fn numeral(n: u32) -> Expr {
    let mut e = zero();
    for _ in 0..n {
        e = suc(e);
    }
    e
}

/// The expression `(E, E′)^l`.
pub fn pair(a: Expr, b: Expr) -> Expr {
    Expr::new(Term::Pair(Box::new(a), Box::new(b)))
}

/// The encryption `{E₁,…,Eₖ,(νr)r}_{E₀}^l` with confounder binder `r`.
pub fn enc(payload: Vec<Expr>, confounder: Name, key: Expr) -> Expr {
    Expr::new(Term::Enc {
        payload,
        confounder,
        key: Box::new(key),
    })
}

/// An encryption whose confounder binder is minted automatically with a
/// base name unique to this call site occurrence.
pub fn enc_auto(payload: Vec<Expr>, key: Expr) -> Expr {
    let conf = Name::global("r").freshen();
    // Use a source-level representative unique per site: the freshened
    // index becomes part of the *base* so canonical identity is unique.
    let base = format!("r'{}", conf.index());
    enc(payload, Name::global(base.as_str()), key)
}

/// An already evaluated value as an expression.
pub fn val(w: Rc<Value>) -> Expr {
    Expr::new(Term::Val(w))
}

/// The inert process `0`.
pub fn nil() -> Process {
    Process::Nil
}

/// Output `E⟨V⟩.P`.
pub fn output(chan: Expr, msg: Expr, then: Process) -> Process {
    Process::Output {
        chan,
        msg,
        then: Box::new(then),
    }
}

/// Input `E(x).P`.
pub fn input(chan: Expr, var: Var, then: Process) -> Process {
    Process::Input {
        chan,
        var,
        then: Box::new(then),
    }
}

/// Parallel composition `P | Q`.
pub fn par(p: Process, q: Process) -> Process {
    Process::Par(Box::new(p), Box::new(q))
}

/// n-ary parallel composition, right-associated; empty input gives `0`.
pub fn par_all(ps: impl IntoIterator<Item = Process>) -> Process {
    let mut it = ps.into_iter().collect::<Vec<_>>().into_iter().rev();
    let last = match it.next() {
        Some(p) => p,
        None => return Process::Nil,
    };
    it.fold(last, |acc, p| par(p, acc))
}

/// Restriction `(νn)P`.
pub fn restrict(name: Name, body: Process) -> Process {
    Process::Restrict {
        name,
        body: Box::new(body),
    }
}

/// Nested restrictions `(νn₁)…(νnₖ)P`.
pub fn restrict_all(names: impl IntoIterator<Item = Name>, body: Process) -> Process {
    let names: Vec<Name> = names.into_iter().collect();
    names
        .into_iter()
        .rev()
        .fold(body, |acc, n| restrict(n, acc))
}

/// Hiding `(hide n)P`.
pub fn hide(name: Name, body: Process) -> Process {
    Process::Hide {
        name,
        body: Box::new(body),
    }
}

/// Nested hidings `(hide n₁)…(hide nₖ)P`.
pub fn hide_all(names: impl IntoIterator<Item = Name>, body: Process) -> Process {
    let names: Vec<Name> = names.into_iter().collect();
    names.into_iter().rev().fold(body, |acc, n| hide(n, acc))
}

/// Match `[E is V]P`.
pub fn guard(lhs: Expr, rhs: Expr, then: Process) -> Process {
    Process::Match {
        lhs,
        rhs,
        then: Box::new(then),
    }
}

/// Replication `!P`.
pub fn replicate(p: Process) -> Process {
    Process::Replicate(Box::new(p))
}

/// Pair splitting `let (x, y) = E in P`.
pub fn split(fst: Var, snd: Var, expr: Expr, then: Process) -> Process {
    Process::Let {
        fst,
        snd,
        expr,
        then: Box::new(then),
    }
}

/// Integer case `case E of 0 : P suc(x) : Q`.
pub fn case_nat(expr: Expr, zero: Process, pred: Var, succ: Process) -> Process {
    Process::CaseNat {
        expr,
        zero: Box::new(zero),
        pred,
        succ: Box::new(succ),
    }
}

/// Decryption `case E of {x₁,…,xₖ}_V in P`.
pub fn decrypt(expr: Expr, vars: Vec<Var>, key: Expr, then: Process) -> Process {
    Process::CaseDec {
        expr,
        vars,
        key,
        then: Box::new(then),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_all_of_empty_is_nil() {
        assert_eq!(par_all(Vec::new()), Process::Nil);
    }

    #[test]
    fn par_all_of_one_is_itself() {
        let p = output(name("c"), zero(), nil());
        assert_eq!(par_all(vec![p.clone()]), p);
    }

    #[test]
    fn par_all_of_three_nests_right() {
        let p = par_all(vec![nil(), nil(), nil()]);
        match p {
            Process::Par(_, q) => match *q {
                Process::Par(_, _) => {}
                other => panic!("expected right nesting, got {other:?}"),
            },
            other => panic!("expected Par, got {other:?}"),
        }
    }

    #[test]
    fn restrict_all_nests_in_order() {
        let a = Name::global("a");
        let b = Name::global("b");
        let p = restrict_all([a, b], nil());
        match p {
            Process::Restrict { name, body } => {
                assert_eq!(name, a);
                match *body {
                    Process::Restrict { name, .. } => assert_eq!(name, b),
                    other => panic!("expected inner restrict, got {other:?}"),
                }
            }
            other => panic!("expected Restrict, got {other:?}"),
        }
    }

    #[test]
    fn numeral_builder_counts() {
        let e = numeral(3);
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn enc_auto_sites_have_distinct_confounders() {
        let e1 = enc_auto(vec![zero()], name("k"));
        let e2 = enc_auto(vec![zero()], name("k"));
        let (c1, c2) = match (&e1.term, &e2.term) {
            (Term::Enc { confounder: a, .. }, Term::Enc { confounder: b, .. }) => (*a, *b),
            _ => unreachable!(),
        };
        assert_ne!(c1.canonical(), c2.canonical());
    }

    #[test]
    fn builders_mint_fresh_labels() {
        let a = zero();
        let b = zero();
        assert_ne!(a.label, b.label);
    }
}
