//! Stable names with disciplined α-conversion.
//!
//! The paper (§2) takes the set of names `N′` to be the disjoint union
//! `⊎_{a∈N} {a, a₀, a₁, …}` and writes `⌊aᵢ⌋ = a` for the *canonical* name of
//! each indexed variant. α-conversion is restricted so a name may only be
//! renamed to another index of the same base; this keeps canonical identity
//! stable under execution, which the Control Flow Analysis relies on (its
//! `κ` component is indexed by canonical names).
//!
//! [`Name`] is exactly such a pair: an interned base [`Symbol`] and an index.
//! Index `0` denotes the name as written in the source; fresh variants are
//! minted with globally unique indices by [`Name::freshen`].

use crate::Symbol;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// A νSPI name `aᵢ`: interned base plus disambiguating index.
///
/// The canonical representative `⌊aᵢ⌋` is [`Name::canonical`]. Names compare
/// by full identity (base *and* index): two fresh variants of the same base
/// are different names at runtime, but analyses collapse them to the shared
/// canonical symbol.
///
/// # Examples
///
/// ```
/// use nuspi_syntax::Name;
///
/// let r = Name::global("r");
/// let r1 = r.freshen();
/// assert_ne!(r, r1);                       // distinct runtime identities
/// assert_eq!(r.canonical(), r1.canonical()); // same canonical name ⌊·⌋
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name {
    base: Symbol,
    index: u32,
}

/// Source of globally unique fresh indices. Index 0 is reserved for
/// source-written names, so the counter starts at 1.
static FRESH: AtomicU32 = AtomicU32::new(1);

impl Name {
    /// The name exactly as written in the source (index 0).
    pub fn global(base: impl Into<Symbol>) -> Name {
        Name {
            base: base.into(),
            index: 0,
        }
    }

    /// A name with an explicit index (mostly useful in tests).
    pub fn with_index(base: impl Into<Symbol>, index: u32) -> Name {
        Name {
            base: base.into(),
            index,
        }
    }

    /// A fresh α-variant of this name: same canonical base, globally unique
    /// index. This is the only disciplined α-conversion the calculus allows.
    pub fn freshen(self) -> Name {
        Name {
            base: self.base,
            index: FRESH.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The canonical representative `⌊aᵢ⌋ = a`.
    pub fn canonical(self) -> Symbol {
        self.base
    }

    /// The disambiguating index (`0` for source-written names).
    pub fn index(self) -> u32 {
        self.index
    }

    /// Whether this is the source-written representative of its class.
    pub fn is_source(self) -> bool {
        self.index == 0
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.index == 0 {
            write!(f, "{}", self.base)
        } else {
            write!(f, "{}#{}", self.base, self.index)
        }
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name::global(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_names_with_same_base_are_equal() {
        assert_eq!(Name::global("a"), Name::global("a"));
    }

    #[test]
    fn freshen_preserves_canonical() {
        let a = Name::global("a");
        let a1 = a.freshen();
        assert_eq!(a1.canonical(), Symbol::intern("a"));
        assert!(!a1.is_source());
    }

    #[test]
    fn freshen_is_globally_unique() {
        let a = Name::global("u");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(a.freshen()));
        }
    }

    #[test]
    fn freshening_different_bases_keeps_them_apart() {
        let a = Name::global("a").freshen();
        let b = Name::global("b").freshen();
        assert_ne!(a.canonical(), b.canonical());
    }

    #[test]
    fn display_source_and_fresh() {
        assert_eq!(Name::global("m").to_string(), "m");
        let f = Name::global("m").freshen();
        let shown = f.to_string();
        assert!(shown.starts_with("m#"), "got {shown}");
    }

    #[test]
    fn with_index_round_trips() {
        let n = Name::with_index("k", 7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.canonical(), Symbol::intern("k"));
    }

    #[test]
    fn source_flag() {
        assert!(Name::global("s").is_source());
        assert!(!Name::with_index("s", 3).is_source());
    }
}
