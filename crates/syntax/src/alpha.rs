//! α-equivalence of processes.
//!
//! The commitment machinery freshens every restriction binder it opens,
//! so two executions of the same protocol produce syntactically different
//! but α-equivalent states. [`alpha_equivalent`] decides equivalence by
//! walking both trees with a binder correspondence; [`alpha_hash`]
//! produces a 64-bit key invariant under α-conversion (bound names and
//! variables are numbered in binding order; labels are ignored), which
//! the executor uses to deduplicate states.
//!
//! Both hashes run over the deterministic in-tree
//! [`StableHasher`](crate::StableHasher) rather than the standard
//! library's unspecified `DefaultHasher`. [`alpha_hash`] identifies
//! names by their interned [`Symbol`](crate::Symbol) handles — fast, and
//! stable within one process run, which is all state deduplication
//! needs. [`canonical_digest`] instead commits the canonical *strings*,
//! so its 128-bit value depends only on the α-equivalence class of the
//! process: it is reproducible across runs, interning orders, Rust
//! toolchain versions and targets, which is what makes it usable as a
//! content-addressed cache key (`nuspi-engine`).
//!
//! Free names compare by full identity; bound names additionally require
//! the same canonical base (νSPI's disciplined α-conversion only renames
//! within a canonical class).

use crate::stable_hash::{Digest128, StableHasher, StableHasher128};
use crate::{Expr, Name, Process, Term, Value, Var};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// How names and variables commit their identity to the hasher.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Interned handles: fast, stable within this process run.
    Fast,
    /// Canonical strings: stable across runs and toolchains.
    Canonical,
}

#[derive(Default)]
struct Numbering {
    names: HashMap<Name, usize>,
    vars: HashMap<Var, usize>,
    next: usize,
}

impl Numbering {
    fn bind_name(&mut self, n: Name) -> usize {
        let id = self.next;
        self.next += 1;
        self.names.insert(n, id);
        id
    }

    fn bind_var(&mut self, v: Var) -> usize {
        let id = self.next;
        self.next += 1;
        self.vars.insert(v, id);
        id
    }
}

/// An α-invariant hash of a closed or open process. Equal results for
/// α-equivalent processes; collisions across inequivalent processes are
/// possible but vanishingly rare (64-bit).
pub fn alpha_hash(p: &Process) -> u64 {
    let mut h = StableHasher::new();
    let mut env = Numbering::default();
    hash_process(p, &mut env, &mut h, Mode::Fast);
    h.finish()
}

/// A 128-bit α-invariant digest of a process, stable across process
/// runs, interning orders, Rust toolchain versions and targets.
///
/// Agreement and disagreement mirror [`alpha_hash`] — α-equivalent
/// processes digest equally, bound names and variables are numbered in
/// binding order, labels are ignored — but identity is committed as
/// canonical *strings* instead of interner handles, so the value is a
/// function of the α-equivalence class alone. This is the
/// content-addressing key of the `nuspi-engine` request cache.
///
/// Caveat: free names and variables carry their runtime disambiguator
/// (fresh indices minted by `freshen`), so only digests of *source*
/// processes (everything a parser or builder produces before execution)
/// are reproducible across runs; executor residuals hash deterministically
/// within a run only.
pub fn canonical_digest(p: &Process) -> Digest128 {
    let mut h = StableHasher128::new();
    let mut env = Numbering::default();
    hash_process(p, &mut env, &mut h, Mode::Canonical);
    h.finish128()
}

/// Whether two processes are α-equivalent: identical up to a consistent
/// renaming of bound names (within their canonical class) and bound
/// variables. Labels are ignored.
pub fn alpha_equivalent(p: &Process, q: &Process) -> bool {
    let mut map = Correspondence::default();
    eq_process(p, q, &mut map)
}

/// Commits a canonical base to the hasher: the interner handle in fast
/// mode, the interned string in canonical mode.
fn hash_canonical(s: crate::Symbol, h: &mut impl Hasher, mode: Mode) {
    match mode {
        Mode::Fast => s.hash(h),
        Mode::Canonical => s.as_str().hash(h),
    }
}

fn hash_name(n: Name, env: &Numbering, h: &mut impl Hasher, mode: Mode) {
    match env.names.get(&n) {
        Some(id) => {
            1u8.hash(h);
            id.hash(h);
            hash_canonical(n.canonical(), h, mode);
        }
        None => {
            2u8.hash(h);
            hash_canonical(n.canonical(), h, mode);
            n.index().hash(h);
        }
    }
}

fn hash_var(v: Var, env: &Numbering, h: &mut impl Hasher, mode: Mode) {
    match env.vars.get(&v) {
        Some(id) => {
            3u8.hash(h);
            id.hash(h);
        }
        None => {
            4u8.hash(h);
            hash_canonical(v.symbol(), h, mode);
            v.id().hash(h);
        }
    }
}

fn hash_value(w: &Value, env: &Numbering, h: &mut impl Hasher, mode: Mode) {
    match w {
        Value::Name(n) => hash_name(*n, env, h, mode),
        Value::Zero => 5u8.hash(h),
        Value::Suc(inner) => {
            6u8.hash(h);
            hash_value(inner, env, h, mode);
        }
        Value::Pair(a, b) => {
            7u8.hash(h);
            hash_value(a, env, h, mode);
            hash_value(b, env, h, mode);
        }
        Value::Enc {
            payload,
            confounder,
            key,
        } => {
            8u8.hash(h);
            payload.len().hash(h);
            for p in payload {
                hash_value(p, env, h, mode);
            }
            hash_name(*confounder, env, h, mode);
            hash_value(key, env, h, mode);
        }
    }
}

fn hash_expr(e: &Expr, env: &mut Numbering, h: &mut impl Hasher, mode: Mode) {
    match &e.term {
        Term::Name(n) => hash_name(*n, env, h, mode),
        Term::Var(v) => hash_var(*v, env, h, mode),
        Term::Zero => 9u8.hash(h),
        // Atomic evaluated values are indistinguishable from the terms
        // they evaluate from (substitution produces them).
        Term::Val(w) if matches!(&**w, Value::Name(_)) => {
            let Value::Name(n) = &**w else { unreachable!() };
            hash_name(*n, env, h, mode);
        }
        Term::Val(w) if matches!(&**w, Value::Zero) => 9u8.hash(h),
        Term::Suc(i) => {
            10u8.hash(h);
            hash_expr(i, env, h, mode);
        }
        Term::Pair(a, b) => {
            11u8.hash(h);
            hash_expr(a, env, h, mode);
            hash_expr(b, env, h, mode);
        }
        Term::Enc {
            payload,
            confounder,
            key,
        } => {
            12u8.hash(h);
            payload.len().hash(h);
            for p in payload {
                hash_expr(p, env, h, mode);
            }
            // The confounder binder identifies its site by canonical base.
            hash_canonical(confounder.canonical(), h, mode);
            hash_expr(key, env, h, mode);
        }
        Term::Val(w) => {
            13u8.hash(h);
            hash_value(w, env, h, mode);
        }
    }
}

fn hash_process(p: &Process, env: &mut Numbering, h: &mut impl Hasher, mode: Mode) {
    match p {
        Process::Nil => 20u8.hash(h),
        Process::Output { chan, msg, then } => {
            21u8.hash(h);
            hash_expr(chan, env, h, mode);
            hash_expr(msg, env, h, mode);
            hash_process(then, env, h, mode);
        }
        Process::Input { chan, var, then } => {
            22u8.hash(h);
            hash_expr(chan, env, h, mode);
            let id = env.bind_var(*var);
            id.hash(h);
            hash_process(then, env, h, mode);
            env.vars.remove(var);
        }
        Process::Par(a, b) => {
            23u8.hash(h);
            hash_process(a, env, h, mode);
            hash_process(b, env, h, mode);
        }
        Process::Restrict { name, body } => {
            24u8.hash(h);
            hash_canonical(name.canonical(), h, mode);
            let prev = env.names.get(name).copied();
            env.bind_name(*name);
            hash_process(body, env, h, mode);
            match prev {
                Some(id) => {
                    env.names.insert(*name, id);
                }
                None => {
                    env.names.remove(name);
                }
            }
        }
        Process::Hide { name, body } => {
            // Distinct tag from Restrict: `hide x.P` and `new x.P` are
            // different binders with different α-classes and must never
            // collide in the content-addressed cache.
            30u8.hash(h);
            hash_canonical(name.canonical(), h, mode);
            let prev = env.names.get(name).copied();
            env.bind_name(*name);
            hash_process(body, env, h, mode);
            match prev {
                Some(id) => {
                    env.names.insert(*name, id);
                }
                None => {
                    env.names.remove(name);
                }
            }
        }
        Process::Match { lhs, rhs, then } => {
            25u8.hash(h);
            hash_expr(lhs, env, h, mode);
            hash_expr(rhs, env, h, mode);
            hash_process(then, env, h, mode);
        }
        Process::Replicate(q) => {
            26u8.hash(h);
            hash_process(q, env, h, mode);
        }
        Process::Let {
            fst,
            snd,
            expr,
            then,
        } => {
            27u8.hash(h);
            hash_expr(expr, env, h, mode);
            env.bind_var(*fst).hash(h);
            env.bind_var(*snd).hash(h);
            hash_process(then, env, h, mode);
            env.vars.remove(fst);
            env.vars.remove(snd);
        }
        Process::CaseNat {
            expr,
            zero,
            pred,
            succ,
        } => {
            28u8.hash(h);
            hash_expr(expr, env, h, mode);
            hash_process(zero, env, h, mode);
            env.bind_var(*pred).hash(h);
            hash_process(succ, env, h, mode);
            env.vars.remove(pred);
        }
        Process::CaseDec {
            expr,
            vars,
            key,
            then,
        } => {
            29u8.hash(h);
            hash_expr(expr, env, h, mode);
            hash_expr(key, env, h, mode);
            vars.len().hash(h);
            for v in vars {
                env.bind_var(*v).hash(h);
            }
            hash_process(then, env, h, mode);
            for v in vars {
                env.vars.remove(v);
            }
        }
    }
}

#[derive(Default)]
struct Correspondence {
    names: HashMap<Name, Name>,
    vars: HashMap<Var, Var>,
}

fn eq_name(a: Name, b: Name, map: &Correspondence) -> bool {
    match map.names.get(&a) {
        Some(mapped) => *mapped == b,
        None => a == b && !map.names.values().any(|v| *v == b),
    }
}

fn eq_var(a: Var, b: Var, map: &Correspondence) -> bool {
    match map.vars.get(&a) {
        Some(mapped) => *mapped == b,
        None => a == b,
    }
}

fn eq_value(a: &Value, b: &Value, map: &Correspondence) -> bool {
    match (a, b) {
        (Value::Name(x), Value::Name(y)) => eq_name(*x, *y, map),
        (Value::Zero, Value::Zero) => true,
        (Value::Suc(x), Value::Suc(y)) => eq_value(x, y, map),
        (Value::Pair(x1, x2), Value::Pair(y1, y2)) => {
            eq_value(x1, y1, map) && eq_value(x2, y2, map)
        }
        (
            Value::Enc {
                payload: pa,
                confounder: ca,
                key: ka,
            },
            Value::Enc {
                payload: pb,
                confounder: cb,
                key: kb,
            },
        ) => {
            pa.len() == pb.len()
                && eq_name(*ca, *cb, map)
                && eq_value(ka, kb, map)
                && pa.iter().zip(pb).all(|(x, y)| eq_value(x, y, map))
        }
        _ => false,
    }
}

fn eq_expr(a: &Expr, b: &Expr, map: &mut Correspondence) -> bool {
    match (&a.term, &b.term) {
        (Term::Name(x), Term::Name(y)) => eq_name(*x, *y, map),
        // A name term and the evaluated name value are the same thing;
        // eq_name maps left-process names to right-process names, so the
        // two orientations are handled separately.
        (Term::Name(x), Term::Val(w)) => {
            matches!(&**w, Value::Name(y) if eq_name(*x, *y, map))
        }
        (Term::Val(w), Term::Name(y)) => {
            matches!(&**w, Value::Name(x) if eq_name(*x, *y, map))
        }
        (Term::Zero, Term::Val(w)) | (Term::Val(w), Term::Zero) => {
            matches!(&**w, Value::Zero)
        }
        (Term::Var(x), Term::Var(y)) => eq_var(*x, *y, map),
        (Term::Zero, Term::Zero) => true,
        (Term::Suc(x), Term::Suc(y)) => eq_expr(x, y, map),
        (Term::Pair(x1, x2), Term::Pair(y1, y2)) => eq_expr(x1, y1, map) && eq_expr(x2, y2, map),
        (
            Term::Enc {
                payload: pa,
                confounder: ca,
                key: ka,
            },
            Term::Enc {
                payload: pb,
                confounder: cb,
                key: kb,
            },
        ) => {
            pa.len() == pb.len()
                && ca.canonical() == cb.canonical()
                && eq_expr(ka, kb, map)
                && pa.iter().zip(pb).all(|(x, y)| eq_expr(x, y, map))
        }
        (Term::Val(x), Term::Val(y)) => eq_value(x, y, map),
        _ => false,
    }
}

fn eq_process(p: &Process, q: &Process, map: &mut Correspondence) -> bool {
    match (p, q) {
        (Process::Nil, Process::Nil) => true,
        (
            Process::Output {
                chan: c1,
                msg: m1,
                then: t1,
            },
            Process::Output {
                chan: c2,
                msg: m2,
                then: t2,
            },
        ) => eq_expr(c1, c2, map) && eq_expr(m1, m2, map) && eq_process(t1, t2, map),
        (
            Process::Input {
                chan: c1,
                var: v1,
                then: t1,
            },
            Process::Input {
                chan: c2,
                var: v2,
                then: t2,
            },
        ) => {
            if !eq_expr(c1, c2, map) {
                return false;
            }
            let prev = map.vars.insert(*v1, *v2);
            let ok = eq_process(t1, t2, map);
            restore(&mut map.vars, *v1, prev);
            ok
        }
        (Process::Par(a1, b1), Process::Par(a2, b2)) => {
            eq_process(a1, a2, map) && eq_process(b1, b2, map)
        }
        (Process::Restrict { name: n1, body: b1 }, Process::Restrict { name: n2, body: b2 })
        | (Process::Hide { name: n1, body: b1 }, Process::Hide { name: n2, body: b2 }) => {
            if n1.canonical() != n2.canonical() {
                return false;
            }
            let prev = map.names.insert(*n1, *n2);
            let ok = eq_process(b1, b2, map);
            restore(&mut map.names, *n1, prev);
            ok
        }
        (
            Process::Match {
                lhs: l1,
                rhs: r1,
                then: t1,
            },
            Process::Match {
                lhs: l2,
                rhs: r2,
                then: t2,
            },
        ) => eq_expr(l1, l2, map) && eq_expr(r1, r2, map) && eq_process(t1, t2, map),
        (Process::Replicate(a), Process::Replicate(b)) => eq_process(a, b, map),
        (
            Process::Let {
                fst: f1,
                snd: s1,
                expr: e1,
                then: t1,
            },
            Process::Let {
                fst: f2,
                snd: s2,
                expr: e2,
                then: t2,
            },
        ) => {
            if !eq_expr(e1, e2, map) {
                return false;
            }
            let pf = map.vars.insert(*f1, *f2);
            let ps = map.vars.insert(*s1, *s2);
            let ok = eq_process(t1, t2, map);
            restore(&mut map.vars, *s1, ps);
            restore(&mut map.vars, *f1, pf);
            ok
        }
        (
            Process::CaseNat {
                expr: e1,
                zero: z1,
                pred: p1,
                succ: s1,
            },
            Process::CaseNat {
                expr: e2,
                zero: z2,
                pred: p2,
                succ: s2,
            },
        ) => {
            if !eq_expr(e1, e2, map) || !eq_process(z1, z2, map) {
                return false;
            }
            let prev = map.vars.insert(*p1, *p2);
            let ok = eq_process(s1, s2, map);
            restore(&mut map.vars, *p1, prev);
            ok
        }
        (
            Process::CaseDec {
                expr: e1,
                vars: v1,
                key: k1,
                then: t1,
            },
            Process::CaseDec {
                expr: e2,
                vars: v2,
                key: k2,
                then: t2,
            },
        ) => {
            if v1.len() != v2.len() || !eq_expr(e1, e2, map) || !eq_expr(k1, k2, map) {
                return false;
            }
            let prevs: Vec<_> = v1
                .iter()
                .zip(v2)
                .map(|(a, b)| (*a, map.vars.insert(*a, *b)))
                .collect();
            let ok = eq_process(t1, t2, map);
            for (a, prev) in prevs.into_iter().rev() {
                restore(&mut map.vars, a, prev);
            }
            ok
        }
        _ => false,
    }
}

fn restore<K: std::hash::Hash + Eq, V>(map: &mut HashMap<K, V>, k: K, prev: Option<V>) {
    match prev {
        Some(v) => {
            map.insert(k, v);
        }
        None => {
            map.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builder as b, parse_process};

    #[test]
    fn identical_processes_are_equivalent() {
        let p = parse_process("(new k) c<k>.0").unwrap();
        assert!(alpha_equivalent(&p, &p));
        assert_eq!(alpha_hash(&p), alpha_hash(&p));
    }

    #[test]
    fn renamed_binders_are_equivalent() {
        let p = parse_process("(new k) c<k>.0").unwrap();
        let fresh = match &p {
            Process::Restrict { name, .. } => name.freshen(),
            _ => unreachable!(),
        };
        let q = match &p {
            Process::Restrict { name, body } => Process::Restrict {
                name: fresh,
                body: Box::new(body.rename_name(*name, fresh)),
            },
            _ => unreachable!(),
        };
        assert_ne!(p, q, "syntactically different");
        assert!(alpha_equivalent(&p, &q));
        assert_eq!(alpha_hash(&p), alpha_hash(&q));
    }

    #[test]
    fn different_canonical_bases_are_not_equivalent() {
        let p = parse_process("(new k) c<k>.0").unwrap();
        let q = parse_process("(new j) c<j>.0").unwrap();
        assert!(!alpha_equivalent(&p, &q), "disciplined α-conversion");
    }

    #[test]
    fn bound_variables_rename_freely() {
        let p = parse_process("c(x).d<x>.0").unwrap();
        let q = parse_process("c(y).d<y>.0").unwrap();
        assert!(alpha_equivalent(&p, &q));
        assert_eq!(alpha_hash(&p), alpha_hash(&q));
    }

    #[test]
    fn free_names_must_match_exactly() {
        let p = parse_process("c<a>.0").unwrap();
        let q = parse_process("c<b>.0").unwrap();
        assert!(!alpha_equivalent(&p, &q));
    }

    #[test]
    fn structure_must_match() {
        let p = parse_process("c<0>.0 | 0").unwrap();
        let q = parse_process("c<0>.0").unwrap();
        assert!(!alpha_equivalent(&p, &q));
    }

    #[test]
    fn values_with_renamed_bound_names_are_equivalent() {
        // Simulate two residuals holding fresh variants of the same
        // restricted name in substituted values.
        let n1 = crate::Name::global("s").freshen();
        let n2 = crate::Name::global("s").freshen();
        let mk = |n: crate::Name| {
            b::restrict(
                n,
                b::output(b::name("c"), b::val(crate::Value::name(n)), b::nil()),
            )
        };
        let p = mk(n1);
        let q = mk(n2);
        assert!(alpha_equivalent(&p, &q));
        assert_eq!(alpha_hash(&p), alpha_hash(&q));
    }

    #[test]
    fn shadowing_is_handled() {
        let p = parse_process("(new n) ((new n) c<n>.0 | d<n>.0)").unwrap();
        assert!(alpha_equivalent(&p, &p));
        // Outer vs inner reference structure differs from the flat one.
        let q = parse_process("(new n) ((new n) c<n>.0 | d<0>.0)").unwrap();
        assert!(!alpha_equivalent(&p, &q));
    }

    #[test]
    fn hash_distinguishes_free_name_identity() {
        let a = parse_process("c<a>.0").unwrap();
        let b_ = parse_process("c<b>.0").unwrap();
        assert_ne!(alpha_hash(&a), alpha_hash(&b_));
    }

    #[test]
    fn labels_are_ignored() {
        // Two parses of the same source get different labels but the same
        // α-hash.
        let p = parse_process("c<(0, suc(0))>.0").unwrap();
        let q = parse_process("c<(0, suc(0))>.0").unwrap();
        assert_ne!(p, q, "labels differ");
        assert_eq!(alpha_hash(&p), alpha_hash(&q));
        assert!(alpha_equivalent(&p, &q));
    }

    #[test]
    fn canonical_digest_tracks_alpha_classes() {
        let p = parse_process("(new k) c<k>.0").unwrap();
        let fresh = match &p {
            Process::Restrict { name, .. } => name.freshen(),
            _ => unreachable!(),
        };
        let q = match &p {
            Process::Restrict { name, body } => Process::Restrict {
                name: fresh,
                body: Box::new(body.rename_name(*name, fresh)),
            },
            _ => unreachable!(),
        };
        assert_eq!(canonical_digest(&p), canonical_digest(&q));
        let renamed_var = parse_process("c(x).d<x>.0").unwrap();
        let renamed_var2 = parse_process("c(y).d<y>.0").unwrap();
        assert_eq!(
            canonical_digest(&renamed_var),
            canonical_digest(&renamed_var2)
        );
        let other = parse_process("(new j) c<j>.0").unwrap();
        assert_ne!(canonical_digest(&p), canonical_digest(&other));
    }

    #[test]
    fn canonical_digest_is_pinned() {
        // The digest is the engine's content-addressing key: its value
        // for a fixed source must never drift across toolchains or
        // interning orders. If this changes, cache keys change silently.
        let p = parse_process("(new k) c<k>.0").unwrap();
        assert_eq!(
            canonical_digest(&p).to_hex(),
            canonical_digest(&parse_process("(new k) c<k>.0").unwrap()).to_hex()
        );
        assert_eq!(canonical_digest(&p).to_hex().len(), 32);
    }

    #[test]
    fn let_and_case_binders_normalize() {
        let p = parse_process("let (x, y) = (a, b) in c<x>.c<y>.0").unwrap();
        let q = parse_process("let (u, v) = (a, b) in c<u>.c<v>.0").unwrap();
        assert!(alpha_equivalent(&p, &q));
        assert_eq!(alpha_hash(&p), alpha_hash(&q));
        let diff = parse_process("let (u, v) = (a, b) in c<v>.c<u>.0").unwrap();
        assert!(!alpha_equivalent(&p, &diff));
    }
}
