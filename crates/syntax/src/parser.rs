//! Concrete syntax for νSPI and its parser.
//!
//! ```text
//! P ::= 0                                   inert
//!     | E<E'>.P                             output
//!     | E(x).P                              input
//!     | P | P                               parallel ('|' binds loosest)
//!     | (new n) P                           restriction (also 'nu')
//!     | (hide n) P                          hiding (no extrusion)
//!     | [E is E'] P                         match
//!     | !P                                  replication
//!     | let (x, y) = E in P                 pair splitting
//!     | case E of 0: P, suc(x): P           integer case
//!     | case E of {x1,...,xk}:E' in P       decryption
//!     | (P)                                 grouping
//!
//! E ::= ident | 0 | 17                      names/variables, numerals
//!     | suc(E) | (E, E')                    successor, pair
//!     | {E1,...,Ek}:E0                      encryption (implicit confounder)
//!     | {E1,...,Ek, new r}:E0               encryption (explicit confounder)
//! ```
//!
//! Identifiers bound by `(new n)` or a confounder binder resolve to names;
//! identifiers bound by input, `let` or `case` resolve to variables; free
//! identifiers resolve to (public) names. Every binding occurrence gets its
//! own identity, so shadowing is handled without textual α-renaming. Labels
//! are minted fresh on every expression occurrence.
//!
//! Comments run from `--` or `//` to end of line.
//!
//! # Examples
//!
//! ```
//! use nuspi_syntax::parse_process;
//!
//! let p = parse_process("(new k) (c<{m, new r}:k>.0 | c(x). case x of {y}:k in d<y>.0)")?;
//! assert!(p.is_closed());
//! # Ok::<(), nuspi_syntax::ParseError>(())
//! ```

use crate::{builder, Expr, Name, Process, Term, Var};
use std::error::Error;
use std::fmt;

/// A parse failure: position and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token in the source text.
    pub offset: usize,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column (in bytes) of the offending token.
    pub column: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    fn new(offset: usize, message: String) -> ParseError {
        ParseError {
            offset,
            line: 0,
            column: 0,
            message,
        }
    }

    fn locate(mut self, src: &str) -> ParseError {
        let (line, column) = line_col(src, self.offset);
        self.line = line;
        self.column = column;
        self
    }
}

/// 1-based (line, column) of a byte offset.
fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let prefix = &src.as_bytes()[..offset.min(src.len())];
    let line = 1 + prefix.iter().filter(|&&b| b == b'\n').count();
    let col = 1 + prefix.iter().rev().take_while(|&&b| b != b'\n').count();
    (line, col)
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u32),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Lt,
    Gt,
    Dot,
    Bang,
    Pipe,
    Comma,
    Colon,
    Eq,
    KwNew,
    KwHide,
    KwIs,
    KwLet,
    KwIn,
    KwCase,
    KwOf,
    KwSuc,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Num(n) => write!(f, "numeral `{n}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::KwNew => write!(f, "`new`"),
            Tok::KwHide => write!(f, "`hide`"),
            Tok::KwIs => write!(f, "`is`"),
            Tok::KwLet => write!(f, "`let`"),
            Tok::KwIn => write!(f, "`in`"),
            Tok::KwCase => write!(f, "`case`"),
            Tok::KwOf => write!(f, "`of`"),
            Tok::KwSuc => write!(f, "`suc`"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' | '/' if i + 1 < bytes.len() && bytes[i + 1] as char == c => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push(&mut toks, Tok::LParen, &mut i),
            ')' => push(&mut toks, Tok::RParen, &mut i),
            '[' => push(&mut toks, Tok::LBracket, &mut i),
            ']' => push(&mut toks, Tok::RBracket, &mut i),
            '{' => push(&mut toks, Tok::LBrace, &mut i),
            '}' => push(&mut toks, Tok::RBrace, &mut i),
            '<' => push(&mut toks, Tok::Lt, &mut i),
            '>' => push(&mut toks, Tok::Gt, &mut i),
            '.' => push(&mut toks, Tok::Dot, &mut i),
            '!' => push(&mut toks, Tok::Bang, &mut i),
            '|' => push(&mut toks, Tok::Pipe, &mut i),
            ',' => push(&mut toks, Tok::Comma, &mut i),
            ':' => push(&mut toks, Tok::Colon, &mut i),
            '=' => push(&mut toks, Tok::Eq, &mut i),
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: u32 = src[start..i]
                    .parse()
                    .map_err(|_| ParseError::new(start, "numeral too large".into()))?;
                toks.push((Tok::Num(n), start));
            }
            _ if c.is_ascii_alphabetic() || c == '_' || c == '\'' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || matches!(c, '_' | '\'' | '#' | '$' | '*') {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..i];
                let tok = match word {
                    "new" | "nu" => Tok::KwNew,
                    "hide" => Tok::KwHide,
                    "is" => Tok::KwIs,
                    "let" => Tok::KwLet,
                    "in" => Tok::KwIn,
                    "case" => Tok::KwCase,
                    "of" => Tok::KwOf,
                    "suc" => Tok::KwSuc,
                    _ => Tok::Ident(word.to_owned()),
                };
                toks.push((tok, start));
            }
            _ => return Err(ParseError::new(i, format!("unexpected character `{c}`"))),
        }
    }
    Ok(toks)
}

fn push(toks: &mut Vec<(Tok, usize)>, t: Tok, i: &mut usize) {
    toks.push((t, *i));
    *i += 1;
}

#[derive(Clone, Copy)]
enum Binding {
    Variable(Var),
    Restricted(Name),
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    scope: Vec<(String, Binding)>,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(_, o)| o)
            .unwrap_or(self.src_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(self.offset(), message.into()))
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if *t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let got = t.clone();
                self.err(format!("expected {want}, found {got}"))
            }
            None => self.err(format!("expected {want}, found end of input")),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {t}"))
            }
            None => self.err("expected identifier, found end of input"),
        }
    }

    /// Resolves an identifier occurrence: innermost binding wins; unbound
    /// identifiers are free names (with an optional `#index` suffix as
    /// produced by the pretty-printer).
    fn resolve(&self, ident: &str) -> Term {
        for (bound, binding) in self.scope.iter().rev() {
            if bound == ident {
                return match binding {
                    Binding::Variable(v) => Term::Var(*v),
                    Binding::Restricted(n) => Term::Name(*n),
                };
            }
        }
        Term::Name(parse_name_literal(ident))
    }

    /// Binds `ident` as a restricted name for the duration of `f`.
    /// Shadowed binders are freshened so distinct binding occurrences keep
    /// distinct identities while sharing the canonical base.
    fn with_name<T>(
        &mut self,
        ident: String,
        f: impl FnOnce(&mut Parser, Name) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        let base = parse_name_literal(&ident);
        let shadowed = self.scope.iter().any(|(s, _)| *s == ident);
        let name = if shadowed { base.freshen() } else { base };
        self.scope.push((ident, Binding::Restricted(name)));
        let r = f(self, name);
        self.scope.pop();
        r
    }

    /// Binds `ident` as a variable for the duration of `f`.
    fn with_var<T>(
        &mut self,
        ident: String,
        f: impl FnOnce(&mut Parser, Var) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        let v = Var::fresh(ident.as_str());
        self.scope.push((ident, Binding::Variable(v)));
        let r = f(self, v);
        self.scope.pop();
        r
    }

    fn with_vars<T>(
        &mut self,
        idents: Vec<String>,
        f: impl FnOnce(&mut Parser, Vec<Var>) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        let vars: Vec<Var> = idents.iter().map(|s| Var::fresh(s.as_str())).collect();
        for (s, v) in idents.iter().zip(&vars) {
            self.scope.push((s.clone(), Binding::Variable(*v)));
        }
        let r = f(self, vars.clone());
        for _ in &vars {
            self.scope.pop();
        }
        r
    }

    // ---- processes -------------------------------------------------------

    fn parse_par(&mut self) -> Result<Process, ParseError> {
        let mut p = self.parse_prefix()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.pos += 1;
            let q = self.parse_prefix()?;
            p = Process::Par(Box::new(p), Box::new(q));
        }
        Ok(p)
    }

    fn parse_prefix(&mut self) -> Result<Process, ParseError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.pos += 1;
                let p = self.parse_prefix()?;
                Ok(Process::Replicate(Box::new(p)))
            }
            Some(Tok::LBracket) => {
                self.pos += 1;
                let lhs = self.parse_expr()?;
                self.expect(Tok::KwIs)?;
                let rhs = self.parse_expr()?;
                self.expect(Tok::RBracket)?;
                let then = self.parse_prefix()?;
                Ok(Process::Match {
                    lhs,
                    rhs,
                    then: Box::new(then),
                })
            }
            Some(Tok::KwLet) => {
                self.pos += 1;
                self.expect(Tok::LParen)?;
                let a = self.expect_ident()?;
                self.expect(Tok::Comma)?;
                let b = self.expect_ident()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Eq)?;
                let expr = self.parse_expr()?;
                self.expect(Tok::KwIn)?;
                self.with_vars(vec![a, b], |p, vars| {
                    let then = p.parse_prefix()?;
                    Ok(Process::Let {
                        fst: vars[0],
                        snd: vars[1],
                        expr,
                        then: Box::new(then),
                    })
                })
            }
            Some(Tok::KwCase) => {
                self.pos += 1;
                let expr = self.parse_expr()?;
                self.expect(Tok::KwOf)?;
                match self.peek() {
                    Some(Tok::Num(0)) => {
                        self.pos += 1;
                        self.expect(Tok::Colon)?;
                        let zero = self.parse_prefix()?;
                        self.expect(Tok::Comma)?;
                        self.expect(Tok::KwSuc)?;
                        self.expect(Tok::LParen)?;
                        let x = self.expect_ident()?;
                        self.expect(Tok::RParen)?;
                        self.expect(Tok::Colon)?;
                        self.with_var(x, |p, pred| {
                            let succ = p.parse_prefix()?;
                            Ok(Process::CaseNat {
                                expr,
                                zero: Box::new(zero),
                                pred,
                                succ: Box::new(succ),
                            })
                        })
                    }
                    Some(Tok::LBrace) => {
                        self.pos += 1;
                        let mut idents = vec![self.expect_ident()?];
                        while self.peek() == Some(&Tok::Comma) {
                            self.pos += 1;
                            idents.push(self.expect_ident()?);
                        }
                        self.expect(Tok::RBrace)?;
                        self.expect(Tok::Colon)?;
                        let key = self.parse_expr_atom()?;
                        self.expect(Tok::KwIn)?;
                        self.with_vars(idents, |p, vars| {
                            let then = p.parse_prefix()?;
                            Ok(Process::CaseDec {
                                expr,
                                vars,
                                key,
                                then: Box::new(then),
                            })
                        })
                    }
                    _ => self.err("expected `0:` or `{x,...}:` after `of`"),
                }
            }
            Some(Tok::LParen) => {
                // Restriction, parenthesized process, or a pair expression
                // opening an output/input prefix.
                if self.toks.get(self.pos + 1).map(|(t, _)| t) == Some(&Tok::KwNew) {
                    self.pos += 2;
                    let ident = self.expect_ident()?;
                    self.expect(Tok::RParen)?;
                    return self.with_name(ident, |p, name| {
                        let body = p.parse_prefix()?;
                        Ok(Process::Restrict {
                            name,
                            body: Box::new(body),
                        })
                    });
                }
                if self.toks.get(self.pos + 1).map(|(t, _)| t) == Some(&Tok::KwHide) {
                    self.pos += 2;
                    let ident = self.expect_ident()?;
                    self.expect(Tok::RParen)?;
                    return self.with_name(ident, |p, name| {
                        let body = p.parse_prefix()?;
                        Ok(Process::Hide {
                            name,
                            body: Box::new(body),
                        })
                    });
                }
                let save = self.pos;
                // Try an expression-headed prefix first: `(a,b)<m>.P`.
                if let Ok(chan) = self.parse_expr() {
                    if matches!(self.peek(), Some(Tok::Lt) | Some(Tok::LParen)) {
                        return self.parse_prefix_after_chan(chan);
                    }
                }
                self.pos = save;
                self.pos += 1; // consume '('
                let p = self.parse_par()?;
                self.expect(Tok::RParen)?;
                Ok(p)
            }
            Some(Tok::Num(0)) => {
                // Either the inert process or an output/input on channel 0.
                let save = self.pos;
                self.pos += 1;
                match self.peek() {
                    Some(Tok::Lt) | Some(Tok::LParen) => {
                        self.pos = save;
                        let chan = self.parse_expr()?;
                        self.parse_prefix_after_chan(chan)
                    }
                    _ => Ok(Process::Nil),
                }
            }
            Some(_) => {
                let chan = self.parse_expr()?;
                self.parse_prefix_after_chan(chan)
            }
            None => self.err("expected a process, found end of input"),
        }
    }

    fn parse_prefix_after_chan(&mut self, chan: Expr) -> Result<Process, ParseError> {
        match self.peek() {
            Some(Tok::Lt) => {
                self.pos += 1;
                let msg = self.parse_expr()?;
                self.expect(Tok::Gt)?;
                self.expect(Tok::Dot)?;
                let then = self.parse_prefix()?;
                Ok(Process::Output {
                    chan,
                    msg,
                    then: Box::new(then),
                })
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let x = self.expect_ident()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Dot)?;
                self.with_var(x, |p, var| {
                    let then = p.parse_prefix()?;
                    Ok(Process::Input {
                        chan,
                        var,
                        then: Box::new(then),
                    })
                })
            }
            _ => self.err("expected `<` (output) or `(` (input) after channel expression"),
        }
    }

    // ---- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_expr_atom()
    }

    fn parse_expr_atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(Expr::new(self.resolve(&s))),
            Some(Tok::Num(n)) => Ok(builder::numeral(n)),
            Some(Tok::KwSuc) => {
                self.expect(Tok::LParen)?;
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(builder::suc(e))
            }
            Some(Tok::LParen) => {
                let a = self.parse_expr()?;
                self.expect(Tok::Comma)?;
                let b = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(builder::pair(a, b))
            }
            Some(Tok::LBrace) => {
                let mut payload = Vec::new();
                let mut confounder: Option<String> = None;
                loop {
                    if self.peek() == Some(&Tok::KwNew) {
                        self.pos += 1;
                        confounder = Some(self.expect_ident()?);
                        break;
                    }
                    payload.push(self.parse_expr()?);
                    match self.peek() {
                        Some(Tok::Comma) => {
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                self.expect(Tok::RBrace)?;
                self.expect(Tok::Colon)?;
                let key = self.parse_expr_atom()?;
                match confounder {
                    Some(ident) => Ok(builder::enc(payload, parse_name_literal(&ident), key)),
                    None => Ok(builder::enc_auto(payload, key)),
                }
            }
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected an expression, found {t}"))
            }
            None => self.err("expected an expression, found end of input"),
        }
    }
}

/// Parses a name literal, honouring a `#index` suffix produced by the
/// pretty-printer for freshened names.
fn parse_name_literal(ident: &str) -> Name {
    if let Some((base, idx)) = ident.rsplit_once('#') {
        if let Ok(i) = idx.parse::<u32>() {
            return Name::with_index(base, i);
        }
    }
    Name::global(ident)
}

/// Parses a complete process from `src`.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first offending token if the
/// input is not a well-formed process, or if trailing input remains.
pub fn parse_process(src: &str) -> Result<Process, ParseError> {
    parse_process_inner(src).map_err(|e| e.locate(src))
}

fn parse_process_inner(src: &str) -> Result<Process, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        scope: Vec::new(),
        src_len: src.len(),
    };
    let proc = p.parse_par()?;
    if p.pos != p.toks.len() {
        return p.err("trailing input after process");
    }
    Ok(proc)
}

/// Parses a single closed expression from `src` (free identifiers become
/// names).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed or trailing input.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    parse_expr_inner(src).map_err(|e| e.locate(src))
}

fn parse_expr_inner(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        scope: Vec::new(),
        src_len: src.len(),
    };
    let e = p.parse_expr()?;
    if p.pos != p.toks.len() {
        return p.err("trailing input after expression");
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Process, Term};

    fn ok(src: &str) -> Process {
        parse_process(src).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn parses_nil() {
        assert_eq!(ok("0"), Process::Nil);
    }

    #[test]
    fn parses_output_and_input() {
        let p = ok("c<0>.0");
        assert!(matches!(p, Process::Output { .. }));
        let q = ok("c(x).0");
        assert!(matches!(q, Process::Input { .. }));
    }

    #[test]
    fn parses_par_left_assoc() {
        let p = ok("0 | 0 | 0");
        match p {
            Process::Par(l, _) => assert!(matches!(*l, Process::Par(_, _))),
            other => panic!("expected Par, got {other:?}"),
        }
    }

    #[test]
    fn parses_restriction() {
        let p = ok("(new k) c<k>.0");
        match p {
            Process::Restrict { name, .. } => assert_eq!(name.canonical().as_str(), "k"),
            other => panic!("expected Restrict, got {other:?}"),
        }
    }

    #[test]
    fn restriction_scopes_tighter_than_par() {
        let p = ok("(new k) c<k>.0 | d<0>.0");
        assert!(matches!(p, Process::Par(_, _)));
    }

    #[test]
    fn input_binds_variable() {
        let p = ok("c(x).d<x>.0");
        assert!(p.is_closed());
        match p {
            Process::Input { then, .. } => match *then {
                Process::Output { msg, .. } => assert!(matches!(msg.term, Term::Var(_))),
                other => panic!("expected Output, got {other:?}"),
            },
            other => panic!("expected Input, got {other:?}"),
        }
    }

    #[test]
    fn free_identifier_is_a_name() {
        let p = ok("c<m>.0");
        match p {
            Process::Output { msg, .. } => assert!(matches!(msg.term, Term::Name(_))),
            other => panic!("expected Output, got {other:?}"),
        }
    }

    #[test]
    fn parses_match() {
        let p = ok("[0 is 0] c<0>.0");
        assert!(matches!(p, Process::Match { .. }));
    }

    #[test]
    fn parses_replication() {
        assert!(matches!(ok("!c<0>.0"), Process::Replicate(_)));
    }

    #[test]
    fn parses_let() {
        let p = ok("let (x, y) = (0, 0) in c<x>.d<y>.0");
        assert!(p.is_closed());
        assert!(matches!(p, Process::Let { .. }));
    }

    #[test]
    fn parses_case_nat() {
        let p = ok("case suc(0) of 0: 0, suc(x): c<x>.0");
        assert!(p.is_closed());
        assert!(matches!(p, Process::CaseNat { .. }));
    }

    #[test]
    fn parses_decryption() {
        let p = ok("case x0 of {y, z}:k in c<y>.0");
        assert!(matches!(p, Process::CaseDec { ref vars, .. } if vars.len() == 2));
    }

    #[test]
    fn parses_encryption_with_explicit_confounder() {
        let p = ok("c<{m, new r}:k>.0");
        match p {
            Process::Output { msg, .. } => match msg.term {
                Term::Enc {
                    payload,
                    confounder,
                    ..
                } => {
                    assert_eq!(payload.len(), 1);
                    assert_eq!(confounder.canonical().as_str(), "r");
                }
                other => panic!("expected Enc, got {other:?}"),
            },
            other => panic!("expected Output, got {other:?}"),
        }
    }

    #[test]
    fn parses_encryption_with_implicit_confounder() {
        let p = ok("c<{m}:k>.0");
        match p {
            Process::Output { msg, .. } => assert!(matches!(msg.term, Term::Enc { .. })),
            other => panic!("expected Output, got {other:?}"),
        }
    }

    #[test]
    fn numerals_desugar_to_suc() {
        let p = ok("c<2>.0");
        match p {
            Process::Output { msg, .. } => assert!(matches!(msg.term, Term::Suc(_))),
            other => panic!("expected Output, got {other:?}"),
        }
    }

    #[test]
    fn pair_channel_prefix() {
        let p = ok("(a, b)<0>.0");
        match p {
            Process::Output { chan, .. } => assert!(matches!(chan.term, Term::Pair(_, _))),
            other => panic!("expected Output, got {other:?}"),
        }
    }

    #[test]
    fn shadowed_restriction_freshens() {
        let p = ok("(new n) ((new n) c<n>.0 | d<n>.0)");
        // The two binders must have distinct identities.
        fn collect(p: &Process, out: &mut Vec<Name>) {
            if let Process::Restrict { name, body } = p {
                out.push(*name);
                collect(body, out);
            } else if let Process::Par(a, b) = p {
                collect(a, out);
                collect(b, out);
            }
        }
        let mut binders = Vec::new();
        collect(&p, &mut binders);
        assert_eq!(binders.len(), 2);
        assert_ne!(binders[0], binders[1]);
        assert_eq!(binders[0].canonical(), binders[1].canonical());
    }

    #[test]
    fn nested_shadowing_variables() {
        let p = ok("c(x).c(x).d<x>.0");
        assert!(p.is_closed());
    }

    #[test]
    fn comments_are_skipped() {
        let p = ok("-- a comment\nc<0>.0 // trailing");
        assert!(matches!(p, Process::Output { .. }));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_process("c<0>.").is_err());
        assert!(parse_process("@").is_err());
        assert!(parse_process("c<0>.0 extra").is_err());
    }

    #[test]
    fn error_positions_point_into_source() {
        let e = parse_process("c<0>?").unwrap_err();
        assert_eq!(e.offset, 4);
        assert_eq!((e.line, e.column), (1, 5));
    }

    #[test]
    fn error_positions_track_lines() {
        let e = parse_process(
            "c<0>.
0 |
  ?",
        )
        .unwrap_err();
        assert_eq!((e.line, e.column), (3, 3));
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn wmf_shape_parses() {
        let src = "
            (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )";
        let p = ok(src);
        assert!(p.is_closed());
    }

    #[test]
    fn print_parse_round_trip() {
        for src in [
            "c<0>.0",
            "(new k) (c<{m, new r}:k>.0 | c(x).0)",
            "let (x, y) = (a, b) in c<x>.c<y>.0",
            "case 3 of 0: 0, suc(x): c<x>.0",
            "case e of {x}:k in c<x>.0",
            "!c(x).d<x>.0",
            "[a is b] c<0>.0",
        ] {
            let p = ok(src);
            let printed = p.to_string();
            let q = ok(&printed);
            // Structural shape survives (labels/var-ids differ).
            assert_eq!(p.size(), q.size(), "{src} -> {printed}");
            assert_eq!(
                p.free_names().len(),
                q.free_names().len(),
                "{src} -> {printed}"
            );
        }
    }

    #[test]
    fn parse_expr_works() {
        let e = parse_expr("(suc(0), {m}:k)").unwrap();
        assert!(matches!(e.term, Term::Pair(_, _)));
        assert!(parse_expr("(a,)").is_err());
    }
}
