//! Pretty-printing of expressions and processes.
//!
//! The output is valid input for the [parser](crate::parse) (round-trip
//! property: parsing a printed closed process yields an α-equivalent
//! process), except that labels and binder ids are not shown — they are
//! re-minted on parse.

use crate::{Expr, Process, Term};
use std::fmt;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.term)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Name(n) => write!(f, "{n}"),
            Term::Var(x) => write!(f, "{x}"),
            Term::Zero => write!(f, "0"),
            Term::Suc(e) => write!(f, "suc({e})"),
            Term::Pair(a, b) => write!(f, "({a}, {b})"),
            Term::Enc {
                payload,
                confounder,
                key,
            } => {
                write!(f, "{{")?;
                for (i, e) in payload.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                if !payload.is_empty() {
                    write!(f, ", ")?;
                }
                write!(f, "new {confounder}}}:{key}")
            }
            Term::Val(w) => write!(f, "{w}"),
        }
    }
}

impl fmt::Display for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Process::Nil => write!(f, "0"),
            Process::Output { chan, msg, then } => {
                write!(f, "{chan}<{msg}>.{}", Paren(then))
            }
            Process::Input { chan, var, then } => {
                write!(f, "{chan}({var}).{}", Paren(then))
            }
            Process::Par(p, q) => write!(f, "{} | {}", Paren(p), Paren(q)),
            Process::Restrict { name, body } => write!(f, "(new {name}) {}", Paren(body)),
            Process::Hide { name, body } => write!(f, "(hide {name}) {}", Paren(body)),
            Process::Match { lhs, rhs, then } => {
                write!(f, "[{lhs} is {rhs}] {}", Paren(then))
            }
            Process::Replicate(p) => write!(f, "!{}", Paren(p)),
            Process::Let {
                fst,
                snd,
                expr,
                then,
            } => write!(f, "let ({fst}, {snd}) = {expr} in {}", Paren(then)),
            Process::CaseNat {
                expr,
                zero,
                pred,
                succ,
            } => write!(
                f,
                "case {expr} of 0: {}, suc({pred}): {}",
                Paren(zero),
                Paren(succ)
            ),
            Process::CaseDec {
                expr,
                vars,
                key,
                then,
            } => {
                write!(f, "case {expr} of {{")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}:{key} in {}", Paren(then))
            }
        }
    }
}

/// Wraps composite sub-processes in parentheses so the printed form parses
/// back with the intended structure.
struct Paren<'a>(&'a Process);

impl fmt::Display for Paren<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Process::Nil
            | Process::Output { .. }
            | Process::Input { .. }
            | Process::Replicate(_) => write!(f, "{}", self.0),
            _ => write!(f, "({})", self.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder as b;
    use crate::{Name, Var};

    #[test]
    fn prints_output_chain() {
        let p = b::output(b::name("c"), b::zero(), b::nil());
        assert_eq!(p.to_string(), "c<0>.0");
    }

    #[test]
    fn prints_input() {
        let x = Var::fresh("x");
        let p = b::input(b::name("c"), x, b::nil());
        assert_eq!(p.to_string(), "c(x).0");
    }

    #[test]
    fn prints_restriction_and_par() {
        let p = b::restrict(Name::global("k"), b::par(b::nil(), b::nil()));
        assert_eq!(p.to_string(), "(new k) (0 | 0)");
    }

    #[test]
    fn prints_match() {
        let p = b::guard(b::zero(), b::zero(), b::nil());
        assert_eq!(p.to_string(), "[0 is 0] 0");
    }

    #[test]
    fn prints_encryption_with_binder() {
        let e = b::enc(vec![b::zero()], Name::global("r"), b::name("k"));
        assert_eq!(e.to_string(), "{0, new r}:k");
    }

    #[test]
    fn prints_case_nat() {
        let x = Var::fresh("x");
        let p = b::case_nat(b::numeral(1), b::nil(), x, b::nil());
        assert_eq!(p.to_string(), "case suc(0) of 0: 0, suc(x): 0");
    }

    #[test]
    fn prints_decryption() {
        let x = Var::fresh("x");
        let p = b::decrypt(
            b::enc(vec![b::zero()], Name::global("r"), b::name("k")),
            vec![x],
            b::name("k"),
            b::nil(),
        );
        assert_eq!(p.to_string(), "case {0, new r}:k of {x}:k in 0");
    }

    #[test]
    fn prints_replication_and_let() {
        let x = Var::fresh("x");
        let y = Var::fresh("y");
        let p = b::replicate(b::split(x, y, b::pair(b::zero(), b::zero()), b::nil()));
        assert_eq!(p.to_string(), "!(let (x, y) = (0, 0) in 0)");
    }
}
