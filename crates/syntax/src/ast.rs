//! Abstract syntax of the νSPI-calculus (Definition 1).
//!
//! * [`Expr`] is a labelled expression `E = M^l`.
//! * [`Term`] is an unlabelled term `M` — names, variables, pairs, numerals,
//!   encryptions `{E₁,…,Eₖ,(νr)r}_{E₀}`, and (already evaluated) values.
//! * [`Process`] is a process `P` with the full π/spi repertoire plus the
//!   structured-data destructors `let`, integer `case`, and decryption
//!   `case … of {x₁,…,xₖ}_V in P`.
//!
//! Every term occurrence carries a [`Label`]; the Control Flow Analysis
//! attaches its abstract cache `ζ` to these labels.

use crate::{Label, Name, Symbol, Value, Var};
use std::collections::HashSet;
use std::rc::Rc;

/// A labelled expression `M^l`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Expr {
    /// The underlying term `M`.
    pub term: Term,
    /// The program point `l`.
    pub label: Label,
}

impl Expr {
    /// Wraps a term with a fresh label.
    pub fn new(term: Term) -> Expr {
        Expr {
            term,
            label: Label::fresh(),
        }
    }

    /// Wraps a term with an explicit label (used by substitution, which
    /// must preserve the label of the replaced occurrence:
    /// `x^lx [M^l / x] = M^lx`).
    pub fn with_label(term: Term, label: Label) -> Expr {
        Expr { term, label }
    }
}

/// An unlabelled term `M`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A name `n`.
    Name(Name),
    /// A variable `x`.
    Var(Var),
    /// A pair `(E, E′)`.
    Pair(Box<Expr>, Box<Expr>),
    /// The numeral `0`.
    Zero,
    /// A successor `suc(E)`.
    Suc(Box<Expr>),
    /// An unevaluated encryption `{E₁,…,Eₖ,(νr)r}_{E₀}`. The confounder
    /// binder `(νr)r` is part of the syntax: evaluating this term generates
    /// a fresh α-variant of `confounder` (Table 1, rule 5).
    Enc {
        /// The payload expressions `E₁,…,Eₖ`.
        payload: Vec<Expr>,
        /// The confounder binder `r` (a *binding* occurrence).
        confounder: Name,
        /// The key expression `E₀`.
        key: Box<Expr>,
    },
    /// An already evaluated value `w` (appears through substitution).
    Val(Rc<Value>),
}

/// A νSPI process `P`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Process {
    /// The inert process `0`.
    Nil,
    /// Output `E⟨V⟩.P`.
    Output {
        /// The channel expression.
        chan: Expr,
        /// The message expression.
        msg: Expr,
        /// The continuation.
        then: Box<Process>,
    },
    /// Input `E(x).P`; binds `x` in `then`.
    Input {
        /// The channel expression.
        chan: Expr,
        /// The bound variable.
        var: Var,
        /// The continuation.
        then: Box<Process>,
    },
    /// Parallel composition `P | Q`.
    Par(Box<Process>, Box<Process>),
    /// Restriction `(νn)P`; binds `name` in `body`.
    Restrict {
        /// The bound name.
        name: Name,
        /// The scope of the restriction.
        body: Box<Process>,
    },
    /// Hiding `(hide n)P`; binds `name` in `body`.
    ///
    /// Like restriction, `hide` generates a fresh name, but it declares
    /// *confidentiality* rather than mere freshness: the scope of a hidden
    /// name never extrudes (the commitment semantics drops any output whose
    /// value mentions it) and the analysis treats the name as secret at the
    /// top of the confidentiality lattice without a policy entry.
    Hide {
        /// The bound name.
        name: Name,
        /// The scope of the hiding.
        body: Box<Process>,
    },
    /// Match `[E is V]P`.
    Match {
        /// Left-hand expression.
        lhs: Expr,
        /// Right-hand expression.
        rhs: Expr,
        /// The guarded continuation.
        then: Box<Process>,
    },
    /// Replication `!P`.
    Replicate(Box<Process>),
    /// Pair splitting `let (x, y) = E in P`; binds `fst` and `snd`.
    Let {
        /// Variable bound to the first component.
        fst: Var,
        /// Variable bound to the second component.
        snd: Var,
        /// The pair expression.
        expr: Expr,
        /// The continuation.
        then: Box<Process>,
    },
    /// Integer case `case E of 0 : P suc(x) : Q`; binds `pred` in `succ`.
    CaseNat {
        /// The scrutinee.
        expr: Expr,
        /// Branch taken when the scrutinee is `0`.
        zero: Box<Process>,
        /// Variable bound to the predecessor in the `suc` branch.
        pred: Var,
        /// Branch taken when the scrutinee is a successor.
        succ: Box<Process>,
    },
    /// Decryption `case E of {x₁,…,xₖ}_V in P`; binds `vars` in `then`.
    CaseDec {
        /// The ciphertext expression.
        expr: Expr,
        /// Variables bound to the decrypted payload.
        vars: Vec<Var>,
        /// The key expression `V`.
        key: Expr,
        /// The continuation.
        then: Box<Process>,
    },
}

impl Expr {
    /// Free variables of the expression, accumulated into `out`.
    pub fn free_vars_into(&self, out: &mut HashSet<Var>) {
        match &self.term {
            Term::Name(_) | Term::Zero | Term::Val(_) => {}
            Term::Var(x) => {
                out.insert(*x);
            }
            Term::Pair(a, b) => {
                a.free_vars_into(out);
                b.free_vars_into(out);
            }
            Term::Suc(e) => e.free_vars_into(out),
            Term::Enc { payload, key, .. } => {
                for e in payload {
                    e.free_vars_into(out);
                }
                key.free_vars_into(out);
            }
        }
    }

    /// Free names of the expression, accumulated into `out`. The confounder
    /// binder of an encryption is *not* free.
    pub fn free_names_into(&self, out: &mut HashSet<Name>) {
        match &self.term {
            Term::Name(n) => {
                out.insert(*n);
            }
            Term::Var(_) | Term::Zero => {}
            Term::Val(w) => {
                for n in w.names() {
                    out.insert(n);
                }
            }
            Term::Pair(a, b) => {
                a.free_names_into(out);
                b.free_names_into(out);
            }
            Term::Suc(e) => e.free_names_into(out),
            Term::Enc { payload, key, .. } => {
                for e in payload {
                    e.free_names_into(out);
                }
                key.free_names_into(out);
            }
        }
    }

    /// Every label occurring in the expression (this one included).
    pub fn labels_into(&self, out: &mut Vec<Label>) {
        out.push(self.label);
        match &self.term {
            Term::Name(_) | Term::Var(_) | Term::Zero | Term::Val(_) => {}
            Term::Pair(a, b) => {
                a.labels_into(out);
                b.labels_into(out);
            }
            Term::Suc(e) => e.labels_into(out),
            Term::Enc { payload, key, .. } => {
                for e in payload {
                    e.labels_into(out);
                }
                key.labels_into(out);
            }
        }
    }

    /// Substitutes the value `w` for the variable `x`, preserving labels:
    /// `x^lx [w/x] = w^lx`.
    pub fn subst(&self, x: Var, w: &Rc<Value>) -> Expr {
        let term = match &self.term {
            Term::Var(y) if *y == x => Term::Val(Rc::clone(w)),
            Term::Name(_) | Term::Var(_) | Term::Zero | Term::Val(_) => self.term.clone(),
            Term::Pair(a, b) => Term::Pair(Box::new(a.subst(x, w)), Box::new(b.subst(x, w))),
            Term::Suc(e) => Term::Suc(Box::new(e.subst(x, w))),
            Term::Enc {
                payload,
                confounder,
                key,
            } => Term::Enc {
                payload: payload.iter().map(|e| e.subst(x, w)).collect(),
                confounder: *confounder,
                key: Box::new(key.subst(x, w)),
            },
        };
        Expr::with_label(term, self.label)
    }

    /// Renames free occurrences of the name `from` to `to`.
    pub fn rename_name(&self, from: Name, to: Name) -> Expr {
        let term = match &self.term {
            Term::Name(n) if *n == from => Term::Name(to),
            Term::Name(_) | Term::Var(_) | Term::Zero => self.term.clone(),
            Term::Val(w) => Term::Val(rename_in_value(w, from, to)),
            Term::Pair(a, b) => Term::Pair(
                Box::new(a.rename_name(from, to)),
                Box::new(b.rename_name(from, to)),
            ),
            Term::Suc(e) => Term::Suc(Box::new(e.rename_name(from, to))),
            Term::Enc {
                payload,
                confounder,
                key,
            } => Term::Enc {
                payload: payload.iter().map(|e| e.rename_name(from, to)).collect(),
                confounder: *confounder,
                key: Box::new(key.rename_name(from, to)),
            },
        };
        Expr::with_label(term, self.label)
    }

    /// Number of AST nodes in the expression.
    pub fn size(&self) -> usize {
        match &self.term {
            Term::Name(_) | Term::Var(_) | Term::Zero | Term::Val(_) => 1,
            Term::Pair(a, b) => 1 + a.size() + b.size(),
            Term::Suc(e) => 1 + e.size(),
            Term::Enc { payload, key, .. } => {
                1 + key.size() + payload.iter().map(Expr::size).sum::<usize>()
            }
        }
    }
}

fn rename_in_value(w: &Rc<Value>, from: Name, to: Name) -> Rc<Value> {
    if !w.contains_name(from) {
        return Rc::clone(w);
    }
    match &**w {
        Value::Name(n) => Value::name(if *n == from { to } else { *n }),
        Value::Zero => Value::zero(),
        Value::Suc(v) => Value::suc(rename_in_value(v, from, to)),
        Value::Pair(a, b) => {
            Value::pair(rename_in_value(a, from, to), rename_in_value(b, from, to))
        }
        Value::Enc {
            payload,
            confounder,
            key,
        } => Value::enc(
            payload
                .iter()
                .map(|v| rename_in_value(v, from, to))
                .collect(),
            if *confounder == from { to } else { *confounder },
            rename_in_value(key, from, to),
        ),
    }
}

impl Process {
    /// Free variables of the process.
    pub fn free_vars(&self) -> HashSet<Var> {
        let mut out = HashSet::new();
        self.free_vars_into(&mut out);
        out
    }

    fn free_vars_into(&self, out: &mut HashSet<Var>) {
        match self {
            Process::Nil => {}
            Process::Output { chan, msg, then } => {
                chan.free_vars_into(out);
                msg.free_vars_into(out);
                then.free_vars_into(out);
            }
            Process::Input { chan, var, then } => {
                chan.free_vars_into(out);
                let mut inner = HashSet::new();
                then.free_vars_into(&mut inner);
                inner.remove(var);
                out.extend(inner);
            }
            Process::Par(p, q) => {
                p.free_vars_into(out);
                q.free_vars_into(out);
            }
            Process::Restrict { body, .. } | Process::Hide { body, .. } => body.free_vars_into(out),
            Process::Match { lhs, rhs, then } => {
                lhs.free_vars_into(out);
                rhs.free_vars_into(out);
                then.free_vars_into(out);
            }
            Process::Replicate(p) => p.free_vars_into(out),
            Process::Let {
                fst,
                snd,
                expr,
                then,
            } => {
                expr.free_vars_into(out);
                let mut inner = HashSet::new();
                then.free_vars_into(&mut inner);
                inner.remove(fst);
                inner.remove(snd);
                out.extend(inner);
            }
            Process::CaseNat {
                expr,
                zero,
                pred,
                succ,
            } => {
                expr.free_vars_into(out);
                zero.free_vars_into(out);
                let mut inner = HashSet::new();
                succ.free_vars_into(&mut inner);
                inner.remove(pred);
                out.extend(inner);
            }
            Process::CaseDec {
                expr,
                vars,
                key,
                then,
            } => {
                expr.free_vars_into(out);
                key.free_vars_into(out);
                let mut inner = HashSet::new();
                then.free_vars_into(&mut inner);
                for v in vars {
                    inner.remove(v);
                }
                out.extend(inner);
            }
        }
    }

    /// Whether the process is closed (no free variables). The semantics
    /// only operates on closed processes.
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Free names of the process.
    pub fn free_names(&self) -> HashSet<Name> {
        let mut out = HashSet::new();
        self.free_names_into(&mut out);
        out
    }

    fn free_names_into(&self, out: &mut HashSet<Name>) {
        match self {
            Process::Nil => {}
            Process::Output { chan, msg, then } => {
                chan.free_names_into(out);
                msg.free_names_into(out);
                then.free_names_into(out);
            }
            Process::Input { chan, then, .. } => {
                chan.free_names_into(out);
                then.free_names_into(out);
            }
            Process::Par(p, q) => {
                p.free_names_into(out);
                q.free_names_into(out);
            }
            Process::Restrict { name, body } | Process::Hide { name, body } => {
                let mut inner = HashSet::new();
                body.free_names_into(&mut inner);
                inner.remove(name);
                out.extend(inner);
            }
            Process::Match { lhs, rhs, then } => {
                lhs.free_names_into(out);
                rhs.free_names_into(out);
                then.free_names_into(out);
            }
            Process::Replicate(p) => p.free_names_into(out),
            Process::Let { expr, then, .. } => {
                expr.free_names_into(out);
                then.free_names_into(out);
            }
            Process::CaseNat {
                expr, zero, succ, ..
            } => {
                expr.free_names_into(out);
                zero.free_names_into(out);
                succ.free_names_into(out);
            }
            Process::CaseDec {
                expr, key, then, ..
            } => {
                expr.free_names_into(out);
                key.free_names_into(out);
                then.free_names_into(out);
            }
        }
    }

    /// Canonical bases of every `hide`-bound name, sorted and deduped.
    ///
    /// A hidden name is secret *by construction* — the security analyses
    /// fold this set into the attacker-opaque names without requiring a
    /// policy entry, and the `W106` lint reports hidden names that the
    /// estimate nevertheless lets escape.
    pub fn hidden_names(&self) -> Vec<Symbol> {
        fn walk(p: &Process, out: &mut Vec<Symbol>) {
            match p {
                Process::Nil => {}
                Process::Output { then, .. }
                | Process::Input { then, .. }
                | Process::Match { then, .. }
                | Process::Let { then, .. }
                | Process::CaseDec { then, .. } => walk(then, out),
                Process::Par(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Process::Hide { name, body } => {
                    out.push(name.canonical());
                    walk(body, out);
                }
                Process::Restrict { body, .. } => walk(body, out),
                Process::Replicate(q) => walk(q, out),
                Process::CaseNat { zero, succ, .. } => {
                    walk(zero, out);
                    walk(succ, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// Every label occurring in the process, in traversal order.
    pub fn labels(&self) -> Vec<Label> {
        let mut out = Vec::new();
        self.labels_into(&mut out);
        out
    }

    fn labels_into(&self, out: &mut Vec<Label>) {
        match self {
            Process::Nil => {}
            Process::Output { chan, msg, then } => {
                chan.labels_into(out);
                msg.labels_into(out);
                then.labels_into(out);
            }
            Process::Input { chan, then, .. } => {
                chan.labels_into(out);
                then.labels_into(out);
            }
            Process::Par(p, q) => {
                p.labels_into(out);
                q.labels_into(out);
            }
            Process::Restrict { body, .. } | Process::Hide { body, .. } => body.labels_into(out),
            Process::Match { lhs, rhs, then } => {
                lhs.labels_into(out);
                rhs.labels_into(out);
                then.labels_into(out);
            }
            Process::Replicate(p) => p.labels_into(out),
            Process::Let { expr, then, .. } => {
                expr.labels_into(out);
                then.labels_into(out);
            }
            Process::CaseNat {
                expr, zero, succ, ..
            } => {
                expr.labels_into(out);
                zero.labels_into(out);
                succ.labels_into(out);
            }
            Process::CaseDec {
                expr, key, then, ..
            } => {
                expr.labels_into(out);
                key.labels_into(out);
                then.labels_into(out);
            }
        }
    }

    /// Substitutes the value `w` for the free variable `x` throughout.
    ///
    /// Values contain no variables, so no variable capture is possible;
    /// name capture is avoided because the executor freshens restriction
    /// binders before opening their scope.
    pub fn subst(&self, x: Var, w: &Rc<Value>) -> Process {
        match self {
            Process::Nil => Process::Nil,
            Process::Output { chan, msg, then } => Process::Output {
                chan: chan.subst(x, w),
                msg: msg.subst(x, w),
                then: Box::new(then.subst(x, w)),
            },
            Process::Input { chan, var, then } => Process::Input {
                chan: chan.subst(x, w),
                var: *var,
                then: if *var == x {
                    then.clone()
                } else {
                    Box::new(then.subst(x, w))
                },
            },
            Process::Par(p, q) => Process::Par(Box::new(p.subst(x, w)), Box::new(q.subst(x, w))),
            Process::Restrict { name, body } => Process::Restrict {
                name: *name,
                body: Box::new(body.subst(x, w)),
            },
            Process::Hide { name, body } => Process::Hide {
                name: *name,
                body: Box::new(body.subst(x, w)),
            },
            Process::Match { lhs, rhs, then } => Process::Match {
                lhs: lhs.subst(x, w),
                rhs: rhs.subst(x, w),
                then: Box::new(then.subst(x, w)),
            },
            Process::Replicate(p) => Process::Replicate(Box::new(p.subst(x, w))),
            Process::Let {
                fst,
                snd,
                expr,
                then,
            } => Process::Let {
                fst: *fst,
                snd: *snd,
                expr: expr.subst(x, w),
                then: if *fst == x || *snd == x {
                    then.clone()
                } else {
                    Box::new(then.subst(x, w))
                },
            },
            Process::CaseNat {
                expr,
                zero,
                pred,
                succ,
            } => Process::CaseNat {
                expr: expr.subst(x, w),
                zero: Box::new(zero.subst(x, w)),
                pred: *pred,
                succ: if *pred == x {
                    succ.clone()
                } else {
                    Box::new(succ.subst(x, w))
                },
            },
            Process::CaseDec {
                expr,
                vars,
                key,
                then,
            } => Process::CaseDec {
                expr: expr.subst(x, w),
                vars: vars.clone(),
                key: key.subst(x, w),
                then: if vars.contains(&x) {
                    then.clone()
                } else {
                    Box::new(then.subst(x, w))
                },
            },
        }
    }

    /// Renames free occurrences of the name `from` to `to`, stopping at
    /// restriction binders for `from`.
    pub fn rename_name(&self, from: Name, to: Name) -> Process {
        match self {
            Process::Nil => Process::Nil,
            Process::Output { chan, msg, then } => Process::Output {
                chan: chan.rename_name(from, to),
                msg: msg.rename_name(from, to),
                then: Box::new(then.rename_name(from, to)),
            },
            Process::Input { chan, var, then } => Process::Input {
                chan: chan.rename_name(from, to),
                var: *var,
                then: Box::new(then.rename_name(from, to)),
            },
            Process::Par(p, q) => Process::Par(
                Box::new(p.rename_name(from, to)),
                Box::new(q.rename_name(from, to)),
            ),
            Process::Restrict { name, body } => {
                if *name == from {
                    // `from` is re-bound here; occurrences below refer to
                    // the inner binder.
                    self.clone()
                } else {
                    Process::Restrict {
                        name: *name,
                        body: Box::new(body.rename_name(from, to)),
                    }
                }
            }
            Process::Hide { name, body } => {
                if *name == from {
                    self.clone()
                } else {
                    Process::Hide {
                        name: *name,
                        body: Box::new(body.rename_name(from, to)),
                    }
                }
            }
            Process::Match { lhs, rhs, then } => Process::Match {
                lhs: lhs.rename_name(from, to),
                rhs: rhs.rename_name(from, to),
                then: Box::new(then.rename_name(from, to)),
            },
            Process::Replicate(p) => Process::Replicate(Box::new(p.rename_name(from, to))),
            Process::Let {
                fst,
                snd,
                expr,
                then,
            } => Process::Let {
                fst: *fst,
                snd: *snd,
                expr: expr.rename_name(from, to),
                then: Box::new(then.rename_name(from, to)),
            },
            Process::CaseNat {
                expr,
                zero,
                pred,
                succ,
            } => Process::CaseNat {
                expr: expr.rename_name(from, to),
                zero: Box::new(zero.rename_name(from, to)),
                pred: *pred,
                succ: Box::new(succ.rename_name(from, to)),
            },
            Process::CaseDec {
                expr,
                vars,
                key,
                then,
            } => Process::CaseDec {
                expr: expr.rename_name(from, to),
                vars: vars.clone(),
                key: key.rename_name(from, to),
                then: Box::new(then.rename_name(from, to)),
            },
        }
    }

    /// Abstracts a free name into a variable: returns `P(x)` with every
    /// source-written occurrence of `name` replaced by the fresh variable
    /// `x`. The inverse of substitution — used to parameterise a closed
    /// protocol over a payload for message-independence checks
    /// (`p.abstract_name(n).0.subst(x, &Value::name(n))` is α-equal to
    /// `p`).
    pub fn abstract_name(&self, name: Symbol) -> (Process, Var) {
        let x = Var::fresh(name.as_str());
        (abstract_in_process(self, name, x), x)
    }

    /// Opens the first restriction whose canonical base is `name`:
    /// removes the binder and replaces its bound occurrences with a fresh
    /// variable, yielding `P(x)`. Returns `None` if no such restriction
    /// exists. This is how a closed protocol is parameterised over a
    /// restricted payload for message-independence checks.
    pub fn abstract_restriction(&self, name: Symbol) -> Option<(Process, Var)> {
        let x = Var::fresh(name.as_str());
        open_restriction(self, name, x).map(|p| (p, x))
    }

    /// Number of AST nodes in the process (expressions included).
    pub fn size(&self) -> usize {
        match self {
            Process::Nil => 1,
            Process::Output { chan, msg, then } => 1 + chan.size() + msg.size() + then.size(),
            Process::Input { chan, then, .. } => 1 + chan.size() + then.size(),
            Process::Par(p, q) => 1 + p.size() + q.size(),
            Process::Restrict { body, .. } | Process::Hide { body, .. } => 1 + body.size(),
            Process::Match { lhs, rhs, then } => 1 + lhs.size() + rhs.size() + then.size(),
            Process::Replicate(p) => 1 + p.size(),
            Process::Let { expr, then, .. } => 1 + expr.size() + then.size(),
            Process::CaseNat {
                expr, zero, succ, ..
            } => 1 + expr.size() + zero.size() + succ.size(),
            Process::CaseDec {
                expr, key, then, ..
            } => 1 + expr.size() + key.size() + then.size(),
        }
    }
}

/// Finds the first `(νn)` with `⌊n⌋ = name` (leftmost-outermost) and opens
/// it: the body has the bound name's occurrences replaced by `x`.
fn open_restriction(p: &Process, name: Symbol, x: Var) -> Option<Process> {
    match p {
        Process::Restrict { name: n, body } if n.canonical() == name => {
            // Substitute the *exact* bound name (which may be indexed) by
            // rebinding through rename to a unique marker first: simplest
            // is to rename occurrences of `n` directly via abstraction on
            // the (now free) identity.
            Some(abstract_bound(body, *n, x))
        }
        Process::Restrict { name: n, body } => {
            open_restriction(body, name, x).map(|b| Process::Restrict {
                name: *n,
                body: Box::new(b),
            })
        }
        // `hide` is never opened — only `(νn)` restrictions are candidates —
        // but the search descends into its scope looking for inner binders.
        Process::Hide { name: n, body } => open_restriction(body, name, x).map(|b| Process::Hide {
            name: *n,
            body: Box::new(b),
        }),
        Process::Par(a, b) => {
            if let Some(a2) = open_restriction(a, name, x) {
                Some(Process::Par(Box::new(a2), b.clone()))
            } else {
                open_restriction(b, name, x).map(|b2| Process::Par(a.clone(), Box::new(b2)))
            }
        }
        Process::Output { chan, msg, then } => {
            open_restriction(then, name, x).map(|t| Process::Output {
                chan: chan.clone(),
                msg: msg.clone(),
                then: Box::new(t),
            })
        }
        Process::Input { chan, var, then } => {
            open_restriction(then, name, x).map(|t| Process::Input {
                chan: chan.clone(),
                var: *var,
                then: Box::new(t),
            })
        }
        Process::Match { lhs, rhs, then } => {
            open_restriction(then, name, x).map(|t| Process::Match {
                lhs: lhs.clone(),
                rhs: rhs.clone(),
                then: Box::new(t),
            })
        }
        Process::Replicate(q) => {
            open_restriction(q, name, x).map(|q2| Process::Replicate(Box::new(q2)))
        }
        Process::Let {
            fst,
            snd,
            expr,
            then,
        } => open_restriction(then, name, x).map(|t| Process::Let {
            fst: *fst,
            snd: *snd,
            expr: expr.clone(),
            then: Box::new(t),
        }),
        Process::CaseNat {
            expr,
            zero,
            pred,
            succ,
        } => {
            if let Some(z) = open_restriction(zero, name, x) {
                Some(Process::CaseNat {
                    expr: expr.clone(),
                    zero: Box::new(z),
                    pred: *pred,
                    succ: succ.clone(),
                })
            } else {
                open_restriction(succ, name, x).map(|sv| Process::CaseNat {
                    expr: expr.clone(),
                    zero: zero.clone(),
                    pred: *pred,
                    succ: Box::new(sv),
                })
            }
        }
        Process::CaseDec {
            expr,
            vars,
            key,
            then,
        } => open_restriction(then, name, x).map(|t| Process::CaseDec {
            expr: expr.clone(),
            vars: vars.clone(),
            key: key.clone(),
            then: Box::new(t),
        }),
        Process::Nil => None,
    }
}

/// Replaces occurrences of the exact bound name `n` with `x`, stopping at
/// re-binders of the same name identity.
fn abstract_bound(p: &Process, n: Name, x: Var) -> Process {
    fn in_expr(e: &Expr, n: Name, x: Var) -> Expr {
        let term = match &e.term {
            Term::Name(m) if *m == n => Term::Var(x),
            Term::Name(_) | Term::Var(_) | Term::Zero | Term::Val(_) => e.term.clone(),
            Term::Suc(i) => Term::Suc(Box::new(in_expr(i, n, x))),
            Term::Pair(a, b) => Term::Pair(Box::new(in_expr(a, n, x)), Box::new(in_expr(b, n, x))),
            Term::Enc {
                payload,
                confounder,
                key,
            } => Term::Enc {
                payload: payload.iter().map(|p| in_expr(p, n, x)).collect(),
                confounder: *confounder,
                key: Box::new(in_expr(key, n, x)),
            },
        };
        Expr::with_label(term, e.label)
    }
    match p {
        Process::Nil => Process::Nil,
        Process::Output { chan, msg, then } => Process::Output {
            chan: in_expr(chan, n, x),
            msg: in_expr(msg, n, x),
            then: Box::new(abstract_bound(then, n, x)),
        },
        Process::Input { chan, var, then } => Process::Input {
            chan: in_expr(chan, n, x),
            var: *var,
            then: Box::new(abstract_bound(then, n, x)),
        },
        Process::Par(a, b) => Process::Par(
            Box::new(abstract_bound(a, n, x)),
            Box::new(abstract_bound(b, n, x)),
        ),
        Process::Restrict { name, body } => {
            if *name == n {
                p.clone()
            } else {
                Process::Restrict {
                    name: *name,
                    body: Box::new(abstract_bound(body, n, x)),
                }
            }
        }
        Process::Hide { name, body } => {
            if *name == n {
                p.clone()
            } else {
                Process::Hide {
                    name: *name,
                    body: Box::new(abstract_bound(body, n, x)),
                }
            }
        }
        Process::Match { lhs, rhs, then } => Process::Match {
            lhs: in_expr(lhs, n, x),
            rhs: in_expr(rhs, n, x),
            then: Box::new(abstract_bound(then, n, x)),
        },
        Process::Replicate(q) => Process::Replicate(Box::new(abstract_bound(q, n, x))),
        Process::Let {
            fst,
            snd,
            expr,
            then,
        } => Process::Let {
            fst: *fst,
            snd: *snd,
            expr: in_expr(expr, n, x),
            then: Box::new(abstract_bound(then, n, x)),
        },
        Process::CaseNat {
            expr,
            zero,
            pred,
            succ,
        } => Process::CaseNat {
            expr: in_expr(expr, n, x),
            zero: Box::new(abstract_bound(zero, n, x)),
            pred: *pred,
            succ: Box::new(abstract_bound(succ, n, x)),
        },
        Process::CaseDec {
            expr,
            vars,
            key,
            then,
        } => Process::CaseDec {
            expr: in_expr(expr, n, x),
            vars: vars.clone(),
            key: in_expr(key, n, x),
            then: Box::new(abstract_bound(then, n, x)),
        },
    }
}

fn abstract_in_expr(e: &Expr, name: Symbol, x: Var) -> Expr {
    let term = match &e.term {
        Term::Name(n) if n.canonical() == name && n.is_source() => Term::Var(x),
        Term::Name(_) | Term::Var(_) | Term::Zero | Term::Val(_) => e.term.clone(),
        Term::Suc(i) => Term::Suc(Box::new(abstract_in_expr(i, name, x))),
        Term::Pair(a, b) => Term::Pair(
            Box::new(abstract_in_expr(a, name, x)),
            Box::new(abstract_in_expr(b, name, x)),
        ),
        Term::Enc {
            payload,
            confounder,
            key,
        } => Term::Enc {
            payload: payload
                .iter()
                .map(|p| abstract_in_expr(p, name, x))
                .collect(),
            confounder: *confounder,
            key: Box::new(abstract_in_expr(key, name, x)),
        },
    };
    Expr::with_label(term, e.label)
}

fn abstract_in_process(p: &Process, name: Symbol, x: Var) -> Process {
    match p {
        Process::Nil => Process::Nil,
        Process::Output { chan, msg, then } => Process::Output {
            chan: abstract_in_expr(chan, name, x),
            msg: abstract_in_expr(msg, name, x),
            then: Box::new(abstract_in_process(then, name, x)),
        },
        Process::Input { chan, var, then } => Process::Input {
            chan: abstract_in_expr(chan, name, x),
            var: *var,
            then: Box::new(abstract_in_process(then, name, x)),
        },
        Process::Par(a, b) => Process::Par(
            Box::new(abstract_in_process(a, name, x)),
            Box::new(abstract_in_process(b, name, x)),
        ),
        Process::Restrict { name: n, body } => {
            if n.canonical() == name && n.is_source() {
                // The name is re-bound below: occurrences there refer to
                // the binder, not the abstracted free name.
                Process::Restrict {
                    name: *n,
                    body: body.clone(),
                }
            } else {
                Process::Restrict {
                    name: *n,
                    body: Box::new(abstract_in_process(body, name, x)),
                }
            }
        }
        Process::Hide { name: n, body } => {
            if n.canonical() == name && n.is_source() {
                Process::Hide {
                    name: *n,
                    body: body.clone(),
                }
            } else {
                Process::Hide {
                    name: *n,
                    body: Box::new(abstract_in_process(body, name, x)),
                }
            }
        }
        Process::Match { lhs, rhs, then } => Process::Match {
            lhs: abstract_in_expr(lhs, name, x),
            rhs: abstract_in_expr(rhs, name, x),
            then: Box::new(abstract_in_process(then, name, x)),
        },
        Process::Replicate(q) => Process::Replicate(Box::new(abstract_in_process(q, name, x))),
        Process::Let {
            fst,
            snd,
            expr,
            then,
        } => Process::Let {
            fst: *fst,
            snd: *snd,
            expr: abstract_in_expr(expr, name, x),
            then: Box::new(abstract_in_process(then, name, x)),
        },
        Process::CaseNat {
            expr,
            zero,
            pred,
            succ,
        } => Process::CaseNat {
            expr: abstract_in_expr(expr, name, x),
            zero: Box::new(abstract_in_process(zero, name, x)),
            pred: *pred,
            succ: Box::new(abstract_in_process(succ, name, x)),
        },
        Process::CaseDec {
            expr,
            vars,
            key,
            then,
        } => Process::CaseDec {
            expr: abstract_in_expr(expr, name, x),
            vars: vars.clone(),
            key: abstract_in_expr(key, name, x),
            then: Box::new(abstract_in_process(then, name, x)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder as b;

    #[test]
    fn free_vars_of_input_are_bound() {
        let x = Var::fresh("x");
        let p = b::input(
            b::name("c"),
            x,
            b::output(b::name("c"), b::var(x), b::nil()),
        );
        assert!(p.is_closed());
    }

    #[test]
    fn unbound_var_is_free() {
        let x = Var::fresh("x");
        let p = b::output(b::name("c"), b::var(x), b::nil());
        assert!(!p.is_closed());
        assert!(p.free_vars().contains(&x));
    }

    #[test]
    fn restriction_binds_names() {
        let n = Name::global("secret");
        let p = b::restrict(n, b::output(b::name("c"), b::name_expr(n), b::nil()));
        let free = p.free_names();
        assert!(!free.contains(&n));
        assert!(free.contains(&Name::global("c")));
    }

    #[test]
    fn confounder_is_not_free() {
        let e = b::enc(vec![b::zero()], Name::global("r"), b::name("k"));
        let mut names = HashSet::new();
        e.free_names_into(&mut names);
        assert!(!names.contains(&Name::global("r")));
        assert!(names.contains(&Name::global("k")));
    }

    #[test]
    fn subst_preserves_label() {
        let x = Var::fresh("x");
        let e = b::var(x);
        let l = e.label;
        let w = Value::numeral(2);
        let e2 = e.subst(x, &w);
        assert_eq!(e2.label, l);
        assert_eq!(e2.term, Term::Val(w));
    }

    #[test]
    fn subst_respects_shadowing() {
        let x = Var::fresh("x");
        // c(x). c<x>.0 — inner x is re-bound, substitution must not cross.
        let p = b::input(
            b::name("c"),
            x,
            b::output(b::name("c"), b::var(x), b::nil()),
        );
        let q = p.subst(x, &Value::zero());
        assert_eq!(p, q, "binder for x shields the body");
    }

    #[test]
    fn subst_replaces_everywhere_when_free() {
        let x = Var::fresh("x");
        let p = b::par(
            b::output(b::name("c"), b::var(x), b::nil()),
            b::output(b::var(x), b::zero(), b::nil()),
        );
        let q = p.subst(x, &Value::name("a"));
        assert!(q.is_closed());
        assert!(q.free_names().contains(&Name::global("a")));
    }

    #[test]
    fn rename_name_stops_at_binder() {
        let n = Name::global("n");
        let m = Name::global("m");
        let p = b::par(
            b::output(b::name_expr(n), b::zero(), b::nil()),
            b::restrict(n, b::output(b::name_expr(n), b::zero(), b::nil())),
        );
        let q = p.rename_name(n, m);
        let free = q.free_names();
        assert!(free.contains(&m));
        assert!(!free.contains(&n));
    }

    #[test]
    fn labels_are_collected_in_order_and_unique() {
        let p = b::output(b::name("c"), b::pair(b::zero(), b::zero()), b::nil());
        let labels = p.labels();
        assert_eq!(labels.len(), 4); // chan, pair, two components
        let set: HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Process::Nil.size(), 1);
        let p = b::output(b::name("c"), b::zero(), b::nil());
        assert_eq!(p.size(), 4); // output + chan + msg + nil
    }

    #[test]
    fn let_shadowing_blocks_subst() {
        let x = Var::fresh("x");
        let y = Var::fresh("y");
        let p = Process::Let {
            fst: x,
            snd: y,
            expr: b::pair(b::zero(), b::zero()),
            then: Box::new(b::output(b::name("c"), b::var(x), b::nil())),
        };
        let q = p.subst(x, &Value::name("leak"));
        assert!(!q.free_names().contains(&Name::global("leak")));
    }

    #[test]
    fn abstract_name_inverts_substitution() {
        let p = crate::parse_process("(new k) c<{m, new r}:k>.0 | d<m>.0").unwrap();
        let (open, x) = p.abstract_name(Symbol::intern("m"));
        assert!(open.free_vars().contains(&x));
        let closed = open.subst(x, &Value::name("m"));
        assert!(crate::alpha_equivalent(&p, &closed));
    }

    #[test]
    fn abstract_name_respects_rebinding() {
        // The inner (new m) re-binds m: only the outer occurrence is
        // abstracted.
        let p = crate::parse_process("c<m>.0 | (new m) d<m>.0").unwrap();
        let (open, x) = p.abstract_name(Symbol::intern("m"));
        let fv = open.free_vars();
        assert!(fv.contains(&x));
        // The restricted side is untouched: substituting something else
        // leaves a process whose d-message is still the bound m.
        let closed = open.subst(x, &Value::zero());
        assert!(closed.is_closed());
        assert!(!closed
            .free_names()
            .iter()
            .any(|n| n.canonical().as_str() == "m"));
    }

    #[test]
    fn abstract_restriction_opens_the_binder() {
        let p = crate::parse_process("(new m) (new k) c<{m, new r}:k>.0").unwrap();
        let (open, x) = p.abstract_restriction(Symbol::intern("m")).unwrap();
        assert!(open.free_vars().contains(&x));
        // Closing it back with the same name restores an α-equal process.
        let closed = Process::Restrict {
            name: Name::global("m"),
            body: Box::new(open.subst(x, &Value::name("m"))),
        };
        assert!(crate::alpha_equivalent(&p, &closed));
    }

    #[test]
    fn abstract_restriction_of_missing_name_is_none() {
        let p = crate::parse_process("c<0>.0").unwrap();
        assert!(p.abstract_restriction(Symbol::intern("ghost")).is_none());
    }

    #[test]
    fn abstract_restriction_finds_nested_binders() {
        let p = crate::parse_process("c(y). (new m) d<m>.0").unwrap();
        let (open, x) = p.abstract_restriction(Symbol::intern("m")).unwrap();
        assert!(open.free_vars().contains(&x));
    }

    #[test]
    fn abstract_absent_name_is_identity_up_to_alpha() {
        let p = crate::parse_process("c<0>.0").unwrap();
        let (open, _) = p.abstract_name(Symbol::intern("ghost"));
        assert!(crate::alpha_equivalent(&p, &open));
    }

    #[test]
    fn casedec_shadowing_blocks_subst() {
        let x = Var::fresh("x");
        let p = Process::CaseDec {
            expr: b::enc(vec![b::zero()], Name::global("r"), b::name("k")),
            vars: vec![x],
            key: b::name("k"),
            then: Box::new(b::output(b::name("c"), b::var(x), b::nil())),
        };
        let q = p.subst(x, &Value::name("leak"));
        assert!(!q.free_names().contains(&Name::global("leak")));
    }
}
