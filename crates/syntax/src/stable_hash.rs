//! A deterministic, dependency-free hasher with a stable output.
//!
//! `std::collections::hash_map::DefaultHasher` is explicitly documented
//! as *unspecified*: its algorithm may change between Rust releases, so
//! any value derived from it is unsuitable as a persistent or
//! content-addressed key. [`StableHasher`] fixes the algorithm instead —
//! a SplitMix64 finalizer (the same mixer as the semantics crate's RNG)
//! folded over the input stream, with every multi-byte write committed
//! in little-endian order regardless of the host. The output therefore
//! depends only on the byte stream fed in, never on the toolchain
//! version or target endianness.
//!
//! [`StableHasher128`] runs two independently-seeded lanes over the same
//! stream and concatenates them into a 128-bit [`Digest128`] — wide
//! enough that accidental collisions are not a concern for
//! content-addressed caching (birthday bound ≈ 2⁶⁴ entries).

use std::hash::Hasher;

/// The SplitMix64 finalizer: one multiply-xorshift avalanche round.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The golden-ratio increment of the SplitMix64 stream; decorrelates
/// consecutive absorbed words.
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

/// A 64-bit [`Hasher`] with a fixed, documented algorithm.
///
/// Two `StableHasher`s fed the same byte stream produce the same value
/// on every Rust version and every target.
#[derive(Clone, Copy, Debug)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A hasher in its canonical initial state.
    pub fn new() -> StableHasher {
        StableHasher::with_seed(0)
    }

    /// A hasher seeded with `seed` (distinct seeds give independent
    /// hash families).
    pub fn with_seed(seed: u64) -> StableHasher {
        StableHasher {
            state: mix(seed ^ PHI),
        }
    }

    #[inline]
    fn absorb(&mut self, word: u64) {
        self.state = mix(self.state.wrapping_add(PHI) ^ word);
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.absorb(u64::from_le_bytes(buf));
        }
        // Commit the length so `"ab" + "c"` and `"a" + "bc"` differ.
        self.absorb(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.absorb(u64::from(i) | 1 << 8);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.absorb(u64::from(i) | 1 << 16);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.absorb(u64::from(i) | 1 << 32);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.absorb(i);
        self.absorb(8);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        // usize is hashed as u64 so 32- and 64-bit targets agree.
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.write_u64(i as u64);
        self.write_u64((i >> 64) as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }

    #[inline]
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
}

/// A 128-bit stable digest, printable as 32 lowercase hex digits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Digest128(pub u128);

impl Digest128 {
    /// The digest as a fixed-width lowercase hex string.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for Digest128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Two independently-seeded [`StableHasher`] lanes over one stream,
/// producing a [`Digest128`].
#[derive(Clone, Copy, Debug)]
pub struct StableHasher128 {
    lo: StableHasher,
    hi: StableHasher,
}

impl StableHasher128 {
    /// A two-lane hasher in its canonical initial state.
    pub fn new() -> StableHasher128 {
        StableHasher128 {
            lo: StableHasher::with_seed(0x5149_a3a4_16c8_6d5d),
            hi: StableHasher::with_seed(0xd67e_9953_51c2_8d74),
        }
    }

    /// The combined 128-bit digest.
    pub fn finish128(&self) -> Digest128 {
        Digest128((u128::from(self.hi.finish()) << 64) | u128::from(self.lo.finish()))
    }
}

impl Default for StableHasher128 {
    fn default() -> StableHasher128 {
        StableHasher128::new()
    }
}

impl Hasher for StableHasher128 {
    #[inline]
    fn finish(&self) -> u64 {
        self.lo.finish()
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.lo.write(bytes);
        self.hi.write(bytes);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.lo.write_u8(i);
        self.hi.write_u8(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.lo.write_u32(i);
        self.hi.write_u32(i);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.lo.write_u64(i);
        self.hi.write_u64(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.lo.write_usize(i);
        self.hi.write_usize(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn h64(f: impl FnOnce(&mut StableHasher)) -> u64 {
        let mut h = StableHasher::new();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn identical_streams_hash_identically() {
        let a = h64(|h| "hello world".hash(h));
        let b = h64(|h| "hello world".hash(h));
        assert_eq!(a, b);
    }

    #[test]
    fn known_vectors_are_pinned() {
        // Pinned outputs: a toolchain change that alters these breaks
        // the content-addressing contract and must be caught here.
        assert_eq!(h64(|h| h.write_u64(0)), 0xc910_60c5_4875_5757);
        assert_eq!(h64(|h| h.write(b"nuspi")), 0x48cf_17d4_96e2_864f);
        assert_eq!(
            StableHasher128::new().finish128().to_hex(),
            "889f0ab30795a31e0f7c33330d25ffe6"
        );
    }

    #[test]
    fn different_inputs_diverge() {
        assert_ne!(h64(|h| h.write(b"a")), h64(|h| h.write(b"b")));
        assert_ne!(h64(|h| h.write_u8(1)), h64(|h| h.write_u32(1)));
        assert_ne!(
            h64(|h| {
                h.write(b"ab");
                h.write(b"c");
            }),
            h64(|h| {
                h.write(b"a");
                h.write(b"bc");
            })
        );
    }

    #[test]
    fn seeds_give_independent_families() {
        let a = StableHasher::with_seed(1);
        let b = StableHasher::with_seed(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn usize_and_u64_agree() {
        assert_eq!(h64(|h| h.write_usize(77)), h64(|h| h.write_u64(77)));
    }

    #[test]
    fn digest_lanes_are_decorrelated() {
        let mut h = StableHasher128::new();
        h.write(b"stream");
        let d = h.finish128();
        assert_ne!((d.0 >> 64) as u64, d.0 as u64);
        assert_eq!(d.to_hex().len(), 32);
        assert_eq!(d.to_string(), d.to_hex());
    }

    #[test]
    fn avalanche_on_single_bit() {
        let a = h64(|h| h.write_u64(0b0));
        let b = h64(|h| h.write_u64(0b1));
        assert!((a ^ b).count_ones() > 16, "weak diffusion: {a:x} vs {b:x}");
    }
}
